#include "h323/messages.hpp"

namespace gmmcs::h323 {

namespace {
void write_endpoint(ByteWriter& w, sim::Endpoint ep) {
  w.u32(ep.node);
  w.u16(ep.port);
}

sim::Endpoint read_endpoint(ByteReader& r) {
  sim::Endpoint ep;
  ep.node = r.u32();
  ep.port = r.u16();
  return ep;
}
}  // namespace

Bytes RasMessage::encode() const {
  ByteWriter w;
  w.u8(0x52);  // 'R' tag distinguishing RAS frames
  w.u8(static_cast<std::uint8_t>(type));
  w.u32(seq);
  w.lstr(endpoint_alias);
  w.lstr(gatekeeper_id);
  write_endpoint(w, call_signal_address);
  w.u32(bandwidth);
  w.lstr(destination_alias);
  w.lstr(reject_reason);
  return w.take();
}

Result<RasMessage> RasMessage::decode(std::span<const std::uint8_t> data) {
  ByteReader r(data);
  if (r.u8() != 0x52) return fail<RasMessage>("h225ras: bad tag");
  RasMessage m;
  auto t = r.u8();
  if (t < 1 || t > 14) return fail<RasMessage>("h225ras: unknown type " + std::to_string(t));
  m.type = static_cast<RasType>(t);
  m.seq = r.u32();
  m.endpoint_alias = r.lstr();
  m.gatekeeper_id = r.lstr();
  m.call_signal_address = read_endpoint(r);
  m.bandwidth = r.u32();
  m.destination_alias = r.lstr();
  m.reject_reason = r.lstr();
  if (!r.ok()) return fail<RasMessage>("h225ras: truncated");
  return m;
}

Bytes Q931Message::encode() const {
  ByteWriter w;
  w.u8(0x08);  // Q.931 protocol discriminator
  w.u8(static_cast<std::uint8_t>(type));
  w.u16(call_reference);
  w.lstr(calling_party);
  w.lstr(called_party);
  write_endpoint(w, h245_address);
  w.lstr(release_reason);
  return w.take();
}

Result<Q931Message> Q931Message::decode(std::span<const std::uint8_t> data) {
  ByteReader r(data);
  if (r.u8() != 0x08) return fail<Q931Message>("q931: bad protocol discriminator");
  Q931Message m;
  auto t = r.u8();
  switch (static_cast<Q931Type>(t)) {
    case Q931Type::kSetup:
    case Q931Type::kCallProceeding:
    case Q931Type::kAlerting:
    case Q931Type::kConnect:
    case Q931Type::kReleaseComplete:
      m.type = static_cast<Q931Type>(t);
      break;
    default:
      return fail<Q931Message>("q931: unknown message type " + std::to_string(t));
  }
  m.call_reference = r.u16();
  m.calling_party = r.lstr();
  m.called_party = r.lstr();
  m.h245_address = read_endpoint(r);
  m.release_reason = r.lstr();
  if (!r.ok()) return fail<Q931Message>("q931: truncated");
  return m;
}

Bytes H245Message::encode() const {
  ByteWriter w;
  w.u8(0x45);  // our H.245 frame tag
  w.u8(static_cast<std::uint8_t>(type));
  w.u32(seq);
  w.u8(static_cast<std::uint8_t>(capabilities.size()));
  for (std::uint8_t c : capabilities) w.u8(c);
  w.u16(channel);
  w.lstr(media_kind);
  w.u8(payload_type);
  write_endpoint(w, media_address);
  w.lstr(reject_reason);
  return w.take();
}

Result<H245Message> H245Message::decode(std::span<const std::uint8_t> data) {
  ByteReader r(data);
  if (r.u8() != 0x45) return fail<H245Message>("h245: bad tag");
  H245Message m;
  auto t = r.u8();
  if (t < 1 || t > 10) return fail<H245Message>("h245: unknown type " + std::to_string(t));
  m.type = static_cast<H245Type>(t);
  m.seq = r.u32();
  // Clamped count read: a 255-capability claim on a truncated frame used
  // to spin 255 iterations of zero-reads before the final ok() check.
  auto ncaps = r.read_count_u8(1);
  if (!ncaps.ok()) return fail<H245Message>("h245: capability count exceeds frame");
  m.capabilities.reserve(ncaps.value());
  for (std::size_t i = 0; i < ncaps.value(); ++i) m.capabilities.push_back(r.u8());
  m.channel = r.u16();
  m.media_kind = r.lstr();
  m.payload_type = r.u8();
  m.media_address = read_endpoint(r);
  m.reject_reason = r.lstr();
  if (!r.ok()) return fail<H245Message>("h245: truncated");
  return m;
}

}  // namespace gmmcs::h323
