// H.323 message set: H.225 RAS, H.225.0/Q.931 call signaling, H.245
// conference control — the subset Global-MMCS's gateway translates.
//
// Real H.323 encodes these with ASN.1 PER; what the paper integrates is
// the *signaling state machines* (gatekeeper discovery/registration/
// admission, Setup/Connect call establishment, capability exchange and
// logical channels), so we keep the fields and flows faithful and use a
// compact binary encoding in place of PER (see DESIGN.md §2).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/result.hpp"
#include "sim/network.hpp"

namespace gmmcs::h323 {

// --- H.225 RAS (UDP port 1719) ---

enum class RasType : std::uint8_t {
  kGatekeeperRequest = 1,   // GRQ
  kGatekeeperConfirm = 2,   // GCF
  kGatekeeperReject = 3,    // GRJ
  kRegistrationRequest = 4, // RRQ
  kRegistrationConfirm = 5, // RCF
  kRegistrationReject = 6,  // RRJ
  kAdmissionRequest = 7,    // ARQ
  kAdmissionConfirm = 8,    // ACF
  kAdmissionReject = 9,     // ARJ
  kDisengageRequest = 10,   // DRQ
  kDisengageConfirm = 11,   // DCF
  kBandwidthRequest = 12,   // BRQ: change admitted bandwidth mid-call
  kBandwidthConfirm = 13,   // BCF
  kBandwidthReject = 14,    // BRJ
};

struct RasMessage {
  RasType type = RasType::kGatekeeperRequest;
  std::uint32_t seq = 0;
  std::string endpoint_alias;   // H.323-ID of the endpoint
  std::string gatekeeper_id;
  /// Endpoint's call-signaling address (RRQ) or the address the caller
  /// must signal to (ACF).
  sim::Endpoint call_signal_address{};
  /// Requested/granted bandwidth (ARQ/ACF), in units of 100 bit/s as in
  /// H.225.
  std::uint32_t bandwidth = 0;
  /// Destination alias for admission (conference alias "conf-<id>").
  std::string destination_alias;
  std::string reject_reason;

  [[nodiscard]] Bytes encode() const;
  [[nodiscard]] static Result<RasMessage> decode(std::span<const std::uint8_t> data);
};

// --- H.225.0 call signaling (Q.931 flavored, TCP port 1720) ---

enum class Q931Type : std::uint8_t {
  kSetup = 0x05,
  kCallProceeding = 0x02,
  kAlerting = 0x01,
  kConnect = 0x07,
  kReleaseComplete = 0x5A,
};

struct Q931Message {
  Q931Type type = Q931Type::kSetup;
  std::uint16_t call_reference = 0;
  std::string calling_party;
  std::string called_party;  // conference alias for gateway calls
  /// H.245 control-channel address (Connect carries the callee's).
  sim::Endpoint h245_address{};
  std::string release_reason;

  [[nodiscard]] Bytes encode() const;
  [[nodiscard]] static Result<Q931Message> decode(std::span<const std::uint8_t> data);
};

// --- H.245 conference control (own TCP connection) ---

enum class H245Type : std::uint8_t {
  kTerminalCapabilitySet = 1,
  kTerminalCapabilitySetAck = 2,
  kMasterSlaveDetermination = 3,
  kMasterSlaveAck = 4,
  kOpenLogicalChannel = 5,
  kOpenLogicalChannelAck = 6,
  kOpenLogicalChannelReject = 7,
  kCloseLogicalChannel = 8,
  kCloseLogicalChannelAck = 9,
  kEndSession = 10,
};

struct H245Message {
  H245Type type = H245Type::kTerminalCapabilitySet;
  std::uint32_t seq = 0;
  /// TCS: RTP payload types this terminal can receive.
  std::vector<std::uint8_t> capabilities;
  /// OLC and friends.
  std::uint16_t channel = 0;
  std::string media_kind;        // "audio" | "video"
  std::uint8_t payload_type = 0;
  /// OLC: the opener's RTP receive address (media control semantics);
  /// OLC-Ack: where the opener must send its RTP.
  sim::Endpoint media_address{};
  std::string reject_reason;

  [[nodiscard]] Bytes encode() const;
  [[nodiscard]] static Result<H245Message> decode(std::span<const std::uint8_t> data);
};

}  // namespace gmmcs::h323
