#include "h323/gatekeeper.hpp"

#include "common/strings.hpp"

namespace gmmcs::h323 {

Gatekeeper::Gatekeeper(sim::Host& host) : Gatekeeper(host, Config{}) {}

Gatekeeper::Gatekeeper(sim::Host& host, Config cfg)
    : cfg_(std::move(cfg)), socket_(host, kRasPort) {
  socket_.on_receive([this](const sim::Datagram& d) { handle(d); });
}

std::optional<sim::Endpoint> Gatekeeper::resolve(const std::string& alias) const {
  auto it = registrations_.find(alias);
  if (it == registrations_.end()) return std::nullopt;
  return it->second;
}

void Gatekeeper::handle(const sim::Datagram& d) {
  auto parsed = RasMessage::decode(d.payload);
  if (!parsed.ok()) return;
  const RasMessage& req = parsed.value();
  RasMessage resp;
  resp.seq = req.seq;
  resp.gatekeeper_id = cfg_.gatekeeper_id;
  switch (req.type) {
    case RasType::kGatekeeperRequest:
      resp.type = RasType::kGatekeeperConfirm;
      break;
    case RasType::kRegistrationRequest:
      if (req.endpoint_alias.empty()) {
        resp.type = RasType::kRegistrationReject;
        resp.reject_reason = "missing alias";
      } else {
        registrations_[req.endpoint_alias] = req.call_signal_address;
        resp.type = RasType::kRegistrationConfirm;
        resp.endpoint_alias = req.endpoint_alias;
      }
      break;
    case RasType::kAdmissionRequest:
      resp = admit(req);
      break;
    case RasType::kBandwidthRequest: {
      auto it = admissions_.find(req.endpoint_alias);
      if (it == admissions_.end()) {
        resp.type = RasType::kBandwidthReject;
        resp.reject_reason = "no active admission";
        break;
      }
      std::uint32_t current = it->second;
      // Recompute against the zone budget with the old grant released.
      std::uint32_t others = bandwidth_in_use_ - current;
      if (others + req.bandwidth > cfg_.bandwidth_budget) {
        resp.type = RasType::kBandwidthReject;
        resp.reject_reason = "zone bandwidth exhausted";
        break;
      }
      it->second = req.bandwidth;
      bandwidth_in_use_ = others + req.bandwidth;
      resp.type = RasType::kBandwidthConfirm;
      resp.bandwidth = req.bandwidth;
      break;
    }
    case RasType::kDisengageRequest: {
      auto it = admissions_.find(req.endpoint_alias);
      if (it != admissions_.end()) {
        bandwidth_in_use_ -= it->second;
        admissions_.erase(it);
      }
      resp.type = RasType::kDisengageConfirm;
      break;
    }
    default:
      return;  // confirms/rejects are never addressed to us
  }
  socket_.send_to(d.src, resp.encode());
}

RasMessage Gatekeeper::admit(const RasMessage& req) {
  RasMessage resp;
  resp.seq = req.seq;
  resp.gatekeeper_id = cfg_.gatekeeper_id;
  if (!registrations_.contains(req.endpoint_alias)) {
    resp.type = RasType::kAdmissionReject;
    resp.reject_reason = "caller not registered";
    return resp;
  }
  if (bandwidth_in_use_ + req.bandwidth > cfg_.bandwidth_budget) {
    resp.type = RasType::kAdmissionReject;
    resp.reject_reason = "zone bandwidth exhausted";
    return resp;
  }
  sim::Endpoint target;
  if (starts_with(req.destination_alias, "conf-")) {
    if (conference_target_.node == 0 && conference_target_.port == 0) {
      resp.type = RasType::kAdmissionReject;
      resp.reject_reason = "no gateway for conferences";
      return resp;
    }
    target = conference_target_;
  } else if (auto direct = resolve(req.destination_alias)) {
    target = *direct;
  } else {
    resp.type = RasType::kAdmissionReject;
    resp.reject_reason = "unknown destination " + req.destination_alias;
    return resp;
  }
  bandwidth_in_use_ += req.bandwidth;
  admissions_[req.endpoint_alias] += req.bandwidth;
  resp.type = RasType::kAdmissionConfirm;
  resp.bandwidth = req.bandwidth;
  resp.call_signal_address = target;
  return resp;
}

}  // namespace gmmcs::h323
