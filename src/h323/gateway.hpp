// H.323 Gateway: terminates H.225 call signaling and H.245 control, joins
// callers into XGSP sessions and redirects their RTP to broker topics.
//
// Paper §3.2: the H.323 servers "translate H.225 and H.245 signaling from
// these endpoints into XGSP signaling messages, and redirect their RTP
// channels to the NaradaBrokering servers."
//
// Call flow handled here (caller side is H323Terminal):
//   Setup(conf-<id>)  ->  CallProceeding, Connect(h245 addr per call)
//   TCS               ->  TCS-Ack (+ gateway's own TCS)
//   MSD               ->  MSD-Ack
//   OLC(kind, recv)   ->  register recv addr on the topic's RtpProxy,
//                         OLC-Ack(media addr = proxy ingress)
//   CLC / EndSession / ReleaseComplete -> teardown + XGSP leave
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "broker/rtp_proxy.hpp"
#include "common/thread_annotations.hpp"
#include "h323/messages.hpp"
#include "transport/stream.hpp"
#include "xgsp/session_server.hpp"

namespace gmmcs::h323 {

class GMMCS_PINNED("the gateway serves for the whole run; calls die mid-run, the gateway does not") H323Gateway {
 public:
  static constexpr std::uint16_t kCallSignalPort = 1720;

  H323Gateway(sim::Host& host, xgsp::SessionServer& sessions, sim::Endpoint broker_stream);

  [[nodiscard]] sim::Endpoint call_signal_endpoint() const { return q931_listener_.local(); }
  [[nodiscard]] std::size_t active_calls() const { return calls_.size(); }
  [[nodiscard]] std::uint64_t setups_handled() const { return setups_; }

 private:
  struct Bridge {
    std::map<std::string, std::unique_ptr<broker::RtpProxy>> proxies;
  };
  struct Call {
    std::uint64_t id = 0;
    std::string session_id;
    std::string caller_alias;
    std::uint16_t call_reference = 0;
    std::unique_ptr<transport::StreamListener> h245_listener;
    transport::StreamConnectionPtr q931;
    transport::StreamConnectionPtr h245;
    /// kind -> endpoint RTP receive address registered on the proxy.
    std::map<std::string, sim::Endpoint> receiver_regs;
  };

  void accept_q931(transport::StreamConnectionPtr conn);
  void handle_setup(const Q931Message& setup, transport::StreamConnectionPtr conn);
  void handle_h245(Call& call, const H245Message& m);
  /// Q.931 call references are scoped to their signaling connection, so
  /// calls are keyed by an internal id and torn down by (connection, CRV).
  void teardown(std::uint64_t call_id, bool send_release);
  std::uint64_t find_call(const transport::StreamConnection* q931,
                          std::uint16_t call_reference) const;
  Bridge& bridge_for(const xgsp::Session& session);

  sim::Host* host_;
  xgsp::SessionServer* sessions_;
  sim::Endpoint broker_;
  transport::StreamListener q931_listener_;
  std::uint64_t next_call_id_ = 1;
  /// Accepted signaling connections, owned here until their peer closes.
  /// Handlers capture the raw pointer only: capturing the shared_ptr in the
  /// connection's own on_message would form a reference cycle and leak any
  /// connection that never reaches (or outlives) a call.
  std::map<const transport::StreamConnection*, transport::StreamConnectionPtr> q931_conns_;
  std::map<std::uint64_t, std::unique_ptr<Call>> calls_;  // by internal call id
  std::map<std::string, Bridge> bridges_;                 // by session id
  std::uint64_t setups_ = 0;
};

}  // namespace gmmcs::h323
