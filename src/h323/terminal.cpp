#include "h323/terminal.hpp"

namespace gmmcs::h323 {

H323Terminal::H323Terminal(sim::Host& host, std::string alias, sim::Endpoint gatekeeper_ras)
    : host_(&host), alias_(std::move(alias)), gatekeeper_(gatekeeper_ras), ras_(host) {
  ras_.on_receive([this](const sim::Datagram& d) {
    auto parsed = RasMessage::decode(d.payload);
    if (!parsed.ok()) return;
    auto it = ras_pending_.find(parsed.value().seq);
    if (it == ras_pending_.end()) return;
    auto handler = std::move(it->second);
    ras_pending_.erase(it);
    handler(parsed.value());
  });
}

void H323Terminal::send_ras(RasMessage m, std::function<void(const RasMessage&)> on_reply) {
  m.seq = ras_seq_++;
  ras_pending_[m.seq] = std::move(on_reply);
  ras_.send_to(gatekeeper_, m.encode());
}

void H323Terminal::discover(std::function<void(bool)> cb) {
  RasMessage grq;
  grq.type = RasType::kGatekeeperRequest;
  grq.endpoint_alias = alias_;
  send_ras(std::move(grq), [cb = std::move(cb)](const RasMessage& resp) {
    cb(resp.type == RasType::kGatekeeperConfirm);
  });
}

void H323Terminal::register_endpoint(std::function<void(bool)> cb) {
  RasMessage rrq;
  rrq.type = RasType::kRegistrationRequest;
  rrq.endpoint_alias = alias_;
  // Terminals could accept incoming calls on this address; for the
  // gateway-oriented flows only the binding itself matters.
  rrq.call_signal_address = sim::Endpoint{host_->id(), 1730};
  send_ras(std::move(rrq), [this, cb = std::move(cb)](const RasMessage& resp) {
    registered_ = (resp.type == RasType::kRegistrationConfirm);
    if (!registered_) last_reject_ = resp.reject_reason;
    cb(registered_);
  });
}

void H323Terminal::call(const std::string& destination_alias, std::uint32_t bandwidth,
                        std::vector<MediaPlan> media,
                        std::function<void(bool, const MediaTargets&)> cb) {
  dest_alias_ = destination_alias;
  RasMessage arq;
  arq.type = RasType::kAdmissionRequest;
  arq.endpoint_alias = alias_;
  arq.destination_alias = destination_alias;
  arq.bandwidth = bandwidth;
  send_ras(std::move(arq), [this, media = std::move(media),
                            cb = std::move(cb)](const RasMessage& resp) mutable {
    if (resp.type != RasType::kAdmissionConfirm) {
      last_reject_ = resp.reject_reason;
      cb(false, {});
      return;
    }
    start_signaling(resp.call_signal_address, std::move(media), std::move(cb));
  });
}

void H323Terminal::start_signaling(sim::Endpoint call_signal, std::vector<MediaPlan> media,
                                   std::function<void(bool, const MediaTargets&)> cb) {
  pending_media_ = std::move(media);
  targets_.clear();
  channels_open_ = 0;
  call_cb_ = std::move(cb);
  call_ref_ = next_call_ref_++;
  q931_ = transport::StreamConnection::connect(*host_, call_signal);
  q931_->on_message([this](const Payload& data) {
    auto parsed = Q931Message::decode(data);
    if (!parsed.ok()) return;
    const Q931Message& m = parsed.value();
    switch (m.type) {
      case Q931Type::kConnect:
        start_h245(m.h245_address);
        break;
      case Q931Type::kReleaseComplete:
        last_reject_ = m.release_reason;
        finish_call(false);
        break;
      default:
        break;  // CallProceeding / Alerting are progress indications
    }
  });
  // The called_party alias selects the conference; calling_party is the
  // XGSP participant name recorded by the gateway.
  Q931Message setup;
  setup.type = Q931Type::kSetup;
  setup.call_reference = call_ref_;
  setup.calling_party = alias_;
  setup.called_party = dest_alias_;
  q931_->send(setup.encode());
}

void H323Terminal::start_h245(sim::Endpoint h245_address) {
  h245_ = transport::StreamConnection::connect(*host_, h245_address);
  h245_->on_message([this](const Payload& data) {
    auto parsed = H245Message::decode(data);
    if (parsed.ok()) handle_h245(parsed.value());
  });
  H245Message tcs;
  tcs.type = H245Type::kTerminalCapabilitySet;
  for (const auto& m : pending_media_) tcs.capabilities.push_back(m.payload_type);
  h245_->send(tcs.encode());
  H245Message msd;
  msd.type = H245Type::kMasterSlaveDetermination;
  h245_->send(msd.encode());
}

void H323Terminal::handle_h245(const H245Message& m) {
  switch (m.type) {
    case H245Type::kTerminalCapabilitySet: {
      // The gateway's own TCS: acknowledge, then open logical channels.
      H245Message ack;
      ack.type = H245Type::kTerminalCapabilitySetAck;
      ack.seq = m.seq;
      h245_->send(ack.encode());
      std::uint16_t channel = 1;
      for (const auto& plan : pending_media_) {
        H245Message olc;
        olc.type = H245Type::kOpenLogicalChannel;
        olc.channel = channel++;
        olc.media_kind = plan.kind;
        olc.payload_type = plan.payload_type;
        olc.media_address = plan.receive_rtp;
        h245_->send(olc.encode());
      }
      // Signaling-only call (no logical channels): established now.
      if (pending_media_.empty()) finish_call(true);
      break;
    }
    case H245Type::kOpenLogicalChannelAck:
      targets_[m.media_kind] = m.media_address;
      if (++channels_open_ == pending_media_.size()) finish_call(true);
      break;
    case H245Type::kOpenLogicalChannelReject:
      last_reject_ = m.reject_reason;
      finish_call(false);
      break;
    default:
      break;  // TCS-Ack, MSD-Ack
  }
}

void H323Terminal::finish_call(bool ok) {
  if (!ok) {
    if (h245_) h245_->close();
    if (q931_) q931_->close();
    h245_.reset();
    q931_.reset();
  }
  if (call_cb_) {
    auto cb = std::move(call_cb_);
    call_cb_ = nullptr;
    cb(ok, targets_);
  }
}

void H323Terminal::change_bandwidth(std::uint32_t new_bandwidth,
                                    std::function<void(bool)> cb) {
  RasMessage brq;
  brq.type = RasType::kBandwidthRequest;
  brq.endpoint_alias = alias_;
  brq.bandwidth = new_bandwidth;
  send_ras(std::move(brq), [this, cb = std::move(cb)](const RasMessage& resp) {
    bool ok = resp.type == RasType::kBandwidthConfirm;
    if (!ok) last_reject_ = resp.reject_reason;
    cb(ok);
  });
}

void H323Terminal::hangup(std::function<void(bool)> cb) {
  if (!q931_) {
    cb(false);
    return;
  }
  if (h245_) {
    H245Message end;
    end.type = H245Type::kEndSession;
    h245_->send(end.encode());
  }
  Q931Message release;
  release.type = Q931Type::kReleaseComplete;
  release.call_reference = call_ref_;
  q931_->send(release.encode());
  if (h245_) h245_->close();
  q931_->close();
  h245_.reset();
  q931_.reset();
  RasMessage drq;
  drq.type = RasType::kDisengageRequest;
  drq.endpoint_alias = alias_;
  send_ras(std::move(drq), [cb = std::move(cb)](const RasMessage& resp) {
    cb(resp.type == RasType::kDisengageConfirm);
  });
}

}  // namespace gmmcs::h323
