// Simulated H.323 terminal: the client side of the paper's "H.323
// terminals" access path.
//
// Runs the full stack against the gatekeeper and gateway: GRQ discovery,
// RRQ registration, ARQ admission, Q.931 Setup/Connect, H.245 capability
// exchange and logical-channel opening. After call() succeeds the caller
// has, per media kind, the address to send RTP to (the gateway's topic
// proxy) and has told the gateway where it wants to receive.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/thread_annotations.hpp"
#include "h323/messages.hpp"
#include "transport/datagram_socket.hpp"
#include "transport/stream.hpp"

namespace gmmcs::h323 {

class GMMCS_PINNED("H.323 terminals are run-long endpoints; their call state dies first") H323Terminal {
 public:
  H323Terminal(sim::Host& host, std::string alias, sim::Endpoint gatekeeper_ras);

  /// Gatekeeper discovery (GRQ/GCF).
  void discover(std::function<void(bool)> cb);
  /// Registration (RRQ/RCF).
  void register_endpoint(std::function<void(bool)> cb);

  struct MediaPlan {
    std::string kind;            // "audio" | "video"
    std::uint8_t payload_type = 0;
    sim::Endpoint receive_rtp;   // where this terminal wants its RTP
  };
  /// Result of a successful call: kind -> address to send RTP to.
  using MediaTargets = std::map<std::string, sim::Endpoint>;

  /// Places a call to an alias (conference aliases route via the gateway).
  /// `bandwidth` in H.225 units of 100 bit/s.
  void call(const std::string& destination_alias, std::uint32_t bandwidth,
            std::vector<MediaPlan> media, std::function<void(bool, const MediaTargets&)> cb);
  /// Ends the active call (H.245 EndSession + Q.931 ReleaseComplete + DRQ).
  void hangup(std::function<void(bool)> cb);
  /// Renegotiates the admitted bandwidth mid-call (BRQ/BCF); cb(granted).
  void change_bandwidth(std::uint32_t new_bandwidth, std::function<void(bool)> cb);

  [[nodiscard]] const std::string& alias() const { return alias_; }
  [[nodiscard]] bool registered() const { return registered_; }
  [[nodiscard]] bool in_call() const { return static_cast<bool>(q931_); }
  [[nodiscard]] const std::string& last_reject_reason() const { return last_reject_; }

 private:
  void send_ras(RasMessage m, std::function<void(const RasMessage&)> on_reply);
  void start_signaling(sim::Endpoint call_signal, std::vector<MediaPlan> media,
                       std::function<void(bool, const MediaTargets&)> cb);
  void start_h245(sim::Endpoint h245_address);
  void handle_h245(const H245Message& m);
  void finish_call(bool ok);

  sim::Host* host_;
  std::string alias_;
  sim::Endpoint gatekeeper_;
  transport::DatagramSocket ras_;
  std::map<std::uint32_t, std::function<void(const RasMessage&)>> ras_pending_;
  std::uint32_t ras_seq_ = 1;
  std::uint16_t next_call_ref_ = 1;
  bool registered_ = false;
  std::string last_reject_;
  std::string dest_alias_;

  // Active-call state.
  transport::StreamConnectionPtr q931_;
  transport::StreamConnectionPtr h245_;
  std::vector<MediaPlan> pending_media_;
  MediaTargets targets_;
  std::size_t channels_open_ = 0;
  std::uint16_t call_ref_ = 0;
  std::function<void(bool, const MediaTargets&)> call_cb_;
};

}  // namespace gmmcs::h323
