// H.323 Gatekeeper: discovery, registration, admission and bandwidth
// control over RAS (UDP).
//
// Paper §3.2: "The H.323 Servers including a H.323 Gatekeeper and H.323
// gateway create a new H.323 administration domain for individual H.323
// endpoints". Conference aliases ("conf-<sessionid>") resolve to the
// gateway's call-signaling address, which is how endpoint calls land on
// the XGSP bridge; per-endpoint admission enforces a zone bandwidth
// budget, the gatekeeper's classic job.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "h323/messages.hpp"
#include "transport/datagram_socket.hpp"

namespace gmmcs::h323 {

class Gatekeeper {
 public:
  static constexpr std::uint16_t kRasPort = 1719;

  struct Config {
    std::string gatekeeper_id = "gmmcs-zone";
    /// Zone bandwidth budget in H.225 units (100 bit/s each);
    /// 40000 = 4 Mbps of admitted media.
    std::uint32_t bandwidth_budget = 40000;
  };

  Gatekeeper(sim::Host& host, Config cfg);
  explicit Gatekeeper(sim::Host& host);

  /// Points conference-alias admissions at the gateway.
  void set_conference_target(sim::Endpoint call_signal_address) {
    conference_target_ = call_signal_address;
  }

  [[nodiscard]] sim::Endpoint ras_endpoint() const { return socket_.local(); }
  [[nodiscard]] std::size_t registrations() const { return registrations_.size(); }
  [[nodiscard]] std::uint32_t bandwidth_in_use() const { return bandwidth_in_use_; }
  [[nodiscard]] std::optional<sim::Endpoint> resolve(const std::string& alias) const;

 private:
  void handle(const sim::Datagram& d);
  RasMessage admit(const RasMessage& req);

  Config cfg_;
  transport::DatagramSocket socket_;
  std::map<std::string, sim::Endpoint> registrations_;  // alias -> call signaling
  /// Outstanding admissions: endpoint alias -> granted bandwidth.
  std::map<std::string, std::uint32_t> admissions_;
  std::uint32_t bandwidth_in_use_ = 0;
  sim::Endpoint conference_target_{};
};

}  // namespace gmmcs::h323
