// Quickstart: stand up Global-MMCS, create a session, and move video
// between two native clients through the NaradaBrokering fabric.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "broker/client.hpp"
#include "core/global_mmcs.hpp"
#include "media/generator.hpp"
#include "media/probe.hpp"
#include "rtp/session.hpp"
#include "xgsp/client.hpp"

using namespace gmmcs;

int main() {
  // 1. One event loop drives the whole simulated deployment.
  sim::EventLoop loop;
  core::GlobalMmcs mmcs(loop);

  // 2. Create a collaboration session through the XGSP session server.
  std::string sid = mmcs.create_session("quickstart-demo", "alice", {{"video", "H261"}});
  const xgsp::Session* session = mmcs.sessions().find(sid);
  std::printf("created session %s ('%s'), video topic %s\n", sid.c_str(),
              session->title().c_str(), session->stream("video")->topic.c_str());
  std::string topic = session->stream("video")->topic;

  // 3. Two native XGSP clients join: alice sends, bob watches.
  sim::Host& alice_host = mmcs.add_client_host("alice-laptop");
  sim::Host& bob_host = mmcs.add_client_host("bob-laptop");
  xgsp::XgspClient alice(alice_host, mmcs.broker_endpoint(), "alice");
  xgsp::XgspClient bob(bob_host, mmcs.broker_endpoint(), "bob");
  alice.join(sid, [](const xgsp::Message& r) {
    std::printf("alice joined: %s\n", r.ok ? "ok" : r.reason.c_str());
  });
  bob.join(sid, [](const xgsp::Message& r) {
    std::printf("bob joined:   %s\n", r.ok ? "ok" : r.reason.c_str());
  });
  bob.subscribe_media(topic);
  media::MediaProbe probe(90000);
  bob.on_media([&](const broker::Event& ev) { probe.on_wire(ev.payload, loop.now()); });
  loop.run();  // let signaling settle

  // 4. Alice streams 320 kbps H.261 video for five simulated seconds.
  rtp::RtpSession tx(alice_host, {.ssrc = 1, .payload_type = 31, .clock_rate = 90000});
  tx.on_send([&](const Payload& wire) { alice.publish_media(topic, wire); });
  media::VideoSource camera(tx, {.codec = media::codecs::h261(), .seed = 1});
  camera.start();
  loop.run_until(SimTime{duration_s(5).ns()});
  camera.stop();
  loop.run_for(duration_s(1));

  // 5. Report what bob saw.
  const rtp::ReceiverStats& stats = probe.stats();
  std::printf("\nbob received %llu packets (%llu frames sent)\n",
              static_cast<unsigned long long>(stats.received()),
              static_cast<unsigned long long>(camera.frames_emitted()));
  std::printf("end-to-end delay: mean %.2f ms, max %.2f ms\n", stats.delay_ms().mean(),
              stats.delay_ms().max());
  std::printf("interarrival jitter: %.2f ms, loss: %.3f%%\n", stats.jitter_ms(),
              stats.loss_ratio() * 100.0);
  std::printf("\nquickstart complete.\n");
  return 0;
}
