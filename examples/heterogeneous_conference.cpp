// The paper's headline scenario: one XGSP session joined from four
// different collaboration technologies — a SIP endpoint, an H.323
// terminal (via gatekeeper admission), the Admire community (via its SOAP
// web service and WSDL-CI descriptor), and an RTSP streaming viewer —
// with media flowing between all of them through NaradaBrokering topics.
//
//   $ ./examples/heterogeneous_conference
#include <cstdio>

#include "core/global_mmcs.hpp"
#include "h323/terminal.hpp"
#include "media/generator.hpp"
#include "rtp/session.hpp"
#include "sip/endpoint.hpp"
#include "streaming/player.hpp"

using namespace gmmcs;

int main() {
  sim::EventLoop loop;
  core::GlobalMmcs mmcs(loop);
  std::string sid = mmcs.create_session("global-collaboration", "gcf", {{"video", "H261"}});
  std::printf("== session %s created ==\n", sid.c_str());

  // --- SIP endpoint joins through proxy + SIP gateway ---
  sim::Host& sip_host = mmcs.add_client_host("sip-client");
  sip::SipEndpoint alice(sip_host, "sip:alice@iu.edu", mmcs.sip_proxy().endpoint());
  rtp::RtpSession alice_rtp(sip_host, {.ssrc = 100, .payload_type = 31});
  alice.register_with_proxy([](bool ok) { std::printf("SIP register: %d\n", ok); });
  loop.run();
  sip::Sdp offer;
  offer.address = sip_host.id();
  offer.media.push_back({"video", alice_rtp.local().port, 31, "H261/90000"});
  alice.invite(sip::SipGateway::conference_uri(sid), offer,
               [&](bool ok, const sip::SipEndpoint::Call& call) {
                 std::printf("SIP INVITE -> %s\n", ok ? "200 OK" : "failed");
                 if (ok) alice_rtp.add_destination(*call.remote_sdp.media_endpoint("video"));
               });
  loop.run();

  // --- H.323 terminal joins through gatekeeper + H.323 gateway ---
  sim::Host& h323_host = mmcs.add_client_host("h323-room");
  h323::H323Terminal polycom(h323_host, "polycom-room-3", mmcs.gatekeeper().ras_endpoint());
  rtp::RtpSession polycom_rtp(h323_host, {.ssrc = 200, .payload_type = 31});
  polycom.register_endpoint([](bool ok) { std::printf("H.323 RRQ: %d\n", ok); });
  loop.run();
  polycom.call("conf-" + sid, 6000, {{"video", 31, polycom_rtp.local()}},
               [&](bool ok, const h323::H323Terminal::MediaTargets& targets) {
                 std::printf("H.323 call -> %s\n", ok ? "connected" : "released");
                 if (ok) polycom_rtp.add_destination(targets.at("video"));
               });
  loop.run();

  // --- Admire community invited through the XGSP web server (SOAP) ---
  soap::SoapClient portal(mmcs.add_client_host("portal"), mmcs.web().endpoint());
  xml::Element invite("InviteCommunity");
  invite.set_attr("session", sid);
  invite.set_attr("community", mmcs.admire().name());
  portal.call(std::move(invite), [](Result<xml::Element> r) {
    std::printf("InviteCommunity -> %s\n", r.ok() ? "dispatched" : r.error().message.c_str());
  });
  loop.run();
  auto beihang = mmcs.admire().make_terminal(mmcs.add_client_host("beihang-lab"), "wewu");
  beihang->attach(sid);
  std::uint64_t beihang_frames = 0;
  beihang->on_media([&](const sim::Datagram&) { ++beihang_frames; });

  // --- Streaming viewer watches the re-encoded session over RTSP ---
  mmcs.add_producer(sid, "video");
  streaming::StreamingPlayer viewer(mmcs.add_client_host("dorm-viewer"),
                                    mmcs.helix().rtsp_endpoint());
  viewer.play(sid + "-video", [](bool ok) { std::printf("RTSP PLAY -> %d\n", ok); });
  loop.run();

  // --- Membership roster ---
  std::printf("\nparticipants:\n");
  for (const auto& p : mmcs.sessions().find(sid)->members()) {
    std::printf("  %-32s via %s\n", p.user.c_str(), xgsp::to_string(p.kind));
  }

  // --- The SIP side streams video; everyone receives ---
  media::VideoSource camera_cfg(alice_rtp, {.codec = media::codecs::h261(), .seed = 11});
  camera_cfg.start();
  loop.run_until(loop.now() + duration_s(5));
  camera_cfg.stop();
  loop.run_for(duration_s(1));

  std::printf("\nafter 5s of SIP-side video:\n");
  std::printf("  H.323 terminal received %llu packets\n",
              static_cast<unsigned long long>(polycom_rtp.source_stats(100).received()));
  std::printf("  Admire terminal received %llu packets\n",
              static_cast<unsigned long long>(beihang_frames));
  std::printf("  RTSP viewer received %llu re-encoded blocks (startup %.1f ms)\n",
              static_cast<unsigned long long>(viewer.blocks_received()),
              viewer.startup_latency() ? viewer.startup_latency()->to_ms() : -1.0);

  // --- And the H.323 room answers back ---
  for (int i = 0; i < 25; ++i) polycom_rtp.send_media(Bytes(500, 2), 3600 * i);
  loop.run_for(duration_s(1));
  std::printf("\nafter H.323-side video burst:\n");
  std::printf("  SIP endpoint received %llu packets from the room\n",
              static_cast<unsigned long long>(alice_rtp.source_stats(200).received()));
  std::printf("\nheterogeneous conference complete.\n");
  return 0;
}
