// Ad-hoc collaboration: instant messaging, chat rooms and presence on the
// SIP servers, combined with a scheduled meeting — the paper's "hybrid
// collaboration pattern" (§2.1): ad-hoc IM for informal coordination,
// the meeting calendar for the formal session.
//
//   $ ./examples/im_chat
#include <cstdio>

#include "core/global_mmcs.hpp"
#include "sip/endpoint.hpp"
#include "sip/im.hpp"

using namespace gmmcs;

int main() {
  sim::EventLoop loop;
  core::GlobalMmcs mmcs(loop);

  // Three colleagues with IM-capable clients (Windows Messenger, says the
  // paper) register with the SIP proxy.
  sip::SipEndpoint alice(mmcs.add_client_host("alice"), "sip:alice@iu.edu",
                         mmcs.sip_proxy().endpoint());
  sip::SipEndpoint bob(mmcs.add_client_host("bob"), "sip:bob@syr.edu",
                       mmcs.sip_proxy().endpoint());
  sip::SipEndpoint carol(mmcs.add_client_host("carol"), "sip:carol@buaa.edu.cn",
                         mmcs.sip_proxy().endpoint());
  for (auto* ep : {&alice, &bob, &carol}) {
    ep->on_message([ep](const std::string&, const std::string& text) {
      std::printf("  [%s] %s\n", ep->uri().c_str(), text.c_str());
    });
  }
  alice.register_with_proxy([](bool) {});
  bob.register_with_proxy([](bool) {});

  // Alice watches carol's presence; carol is still offline.
  alice.subscribe_presence("sip:carol@buaa.edu.cn", [](const std::string& s) {
    std::printf("presence: carol is %s\n", s.c_str());
  });
  loop.run();

  // Ad-hoc chat room for planning.
  std::string room = sip::ChatServer::room_uri("planning");
  alice.send_message(room, "/join", [](bool) {});
  bob.send_message(room, "/join", [](bool) {});
  loop.run();
  std::printf("room 'planning' has %zu members\n", mmcs.chat().member_count("planning"));
  alice.send_message(room, "shall we review the broker numbers at 10?", [](bool) {});
  loop.run();

  // Carol comes online; alice's watcher fires.
  carol.register_with_proxy([](bool) {});
  loop.run();
  carol.send_message(room, "/join", [](bool) {});
  loop.run();
  bob.send_message(room, "carol's here - booking the meeting room", [](bool) {});
  loop.run();

  // The formal half of the hybrid pattern: a scheduled meeting that
  // auto-starts on the calendar.
  mmcs.scheduler().on_started([&](const xgsp::Reservation& r) {
    std::printf("meeting '%s' started as session %s; invitations to %zu attendees\n",
                r.title.c_str(), r.session_id.c_str(), r.invitees.size());
  });
  mmcs.scheduler().on_finished([](const xgsp::Reservation& r) {
    std::printf("meeting '%s' (session %s) ended\n", r.title.c_str(), r.session_id.c_str());
  });
  mmcs.scheduler().reserve("broker numbers review", "sip:alice@iu.edu",
                           loop.now() + duration_s(60), duration_s(30),
                           {"sip:bob@syr.edu", "sip:carol@buaa.edu.cn"});
  std::printf("reservation made for t+60s (%zu upcoming)\n",
              mmcs.scheduler().upcoming().size());
  loop.run_until(loop.now() + duration_s(120));

  std::printf("\nmessages relayed by the chat server: %llu\n",
              static_cast<unsigned long long>(mmcs.chat().messages_relayed()));
  std::printf("im_chat complete.\n");
  return 0;
}
