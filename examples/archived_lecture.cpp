// Archived lecture: a scheduled session is recorded by the conference
// archive while it runs; after it ends, the recording is replayed onto a
// fresh topic at 2x speed for a viewer who missed it — the conference
// archiving service the paper credits to Admire (§3.1), provided here on
// Global-MMCS's own topics.
//
//   $ ./examples/archived_lecture
#include <cstdio>

#include "broker/client.hpp"
#include "core/global_mmcs.hpp"
#include "media/generator.hpp"
#include "media/probe.hpp"
#include "rtp/session.hpp"

using namespace gmmcs;

int main() {
  sim::EventLoop loop;
  core::GlobalMmcs mmcs(loop);

  // Schedule the lecture 30 s out, 60 s long.
  std::string topic;
  mmcs.scheduler().on_started([&](const xgsp::Reservation& r) {
    topic = mmcs.sessions().find(r.session_id)->stream("video")->topic;
    std::printf("[t=%4.0fs] lecture started (session %s); archive recording %s\n",
                loop.now().to_seconds(), r.session_id.c_str(), topic.c_str());
    mmcs.archive().record(topic);
  });
  bool lecture_over = false;
  mmcs.scheduler().on_finished([&](const xgsp::Reservation& r) {
    std::printf("[t=%4.0fs] lecture ended (session %s)\n", loop.now().to_seconds(),
                r.session_id.c_str());
    mmcs.archive().stop(topic);
    lecture_over = true;
  });
  mmcs.scheduler().reserve("distributed systems lecture", "gcf", loop.now() + duration_s(30),
                           duration_s(60), {"students"}, {{"video", "H261"}});

  // The lecturer's camera starts when the session does.
  sim::Host& lect_host = mmcs.add_client_host("lecturer");
  rtp::RtpSession tx(lect_host, {.ssrc = 1, .payload_type = 31});
  broker::BrokerClient pub(lect_host, mmcs.broker_endpoint(),
                           broker::BrokerClient::Config{.name = "lecturer"});
  media::VideoSource camera(tx, {.codec = media::codecs::h261(), .seed = 8});
  loop.schedule_at(loop.now() + duration_s(30), [&] {
    tx.on_send([&](const Payload& wire) { pub.publish(topic, wire); });
    camera.start();
  });
  loop.schedule_at(loop.now() + duration_s(90), [&] { camera.stop(); });

  // Run through the lecture.
  while (!lecture_over) loop.run_for(duration_s(5));
  loop.run_for(duration_s(2));
  std::printf("[t=%4.0fs] archive holds %zu events\n", loop.now().to_seconds(),
              mmcs.archive().recorded_events(topic));

  // A latecomer watches the recording at 2x.
  broker::BrokerClient viewer(mmcs.add_client_host("latecomer"), mmcs.broker_endpoint(),
                              broker::BrokerClient::Config{.name = "latecomer"});
  viewer.subscribe("/replay/lecture");
  media::MediaProbe probe(90000);
  SimTime first_block, last_block;
  bool got_any = false;
  viewer.on_event([&](const broker::Event& ev) {
    probe.on_wire(ev.payload, loop.now());
    if (!got_any) {
      first_block = loop.now();
      got_any = true;
    }
    last_block = loop.now();
  });
  loop.run();
  SimTime replay_start = loop.now();
  std::printf("[t=%4.0fs] replaying at 2x onto /replay/lecture\n", loop.now().to_seconds());
  mmcs.archive().replay(topic, "/replay/lecture", 2.0);
  loop.run();
  std::printf("[t=%4.0fs] replay done: %llu packets in %.1f s (original: 60 s)\n",
              loop.now().to_seconds(),
              static_cast<unsigned long long>(probe.stats().received()),
              (last_block - replay_start).to_seconds());
  return 0;
}
