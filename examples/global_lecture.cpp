// Global lecture: the Figure-3 workload as an application. One lecturer
// streams 600 Kbps video to 400 receivers through a NaradaBrokering
// broker; a handful of probes co-located with the lecturer report the
// delay/jitter a participant experiences, and the same audience is then
// served by the JMF reflector baseline for comparison.
//
//   $ ./examples/global_lecture
#include <cstdio>

#include "core/experiments.hpp"

using namespace gmmcs;

namespace {

void run(core::Fanout fanout) {
  core::Fig3Config cfg;
  cfg.fanout = fanout;
  cfg.packets = 800;  // ~10 simulated seconds of lecture
  core::Fig3Result r = core::run_fig3(cfg);
  std::printf("%-28s delay %7.2f ms   jitter %6.2f ms   loss %.3f%%   (%.0f kbps stream)\n",
              core::to_string(fanout), r.avg_delay_ms, r.avg_jitter_ms, r.loss_ratio * 100.0,
              r.stream_kbps);
}

}  // namespace

int main() {
  std::printf("Global lecture: 1 speaker -> 400 receivers, 600 Kbps video\n");
  std::printf("(12 receivers co-located with the speaker are measured)\n\n");
  run(core::Fanout::kBroker);
  run(core::Fanout::kBrokerNaive);
  run(core::Fanout::kJmfReflector);
  std::printf("\nThe optimized broker sustains the audience with the lowest delay —\n");
  std::printf("the paper's Figure 3 result. Run bench/fig3_delay_jitter for the\n");
  std::printf("full 2000-packet series.\n");
  return 0;
}
