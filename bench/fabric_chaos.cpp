// Self-healing fabric bench: delivery and repair under injected faults.
//
// A 6-broker ring runs a steady 50 events/s publish stream while a
// FaultPlan crashes brokers (overlapping, transiently partitioning the
// publisher's broker), flaps a fabric link and fires a loss burst at a
// reliable subscriber. Measured:
//   - best-effort delivery ratio while faults are active vs overall,
//   - eventual delivery ratio of the reliable (NAK-repair) profile,
//   - route-repair detection latency (heartbeat miss -> routes rebuilt),
//   - client reconnect latency (keepalive miss -> backoff -> re-Hello).
// Writes BENCH_fabric_chaos.json. Fully deterministic per seed.
//
// Generated mode (--seed S [--plans N] [--quick] [--workers W]) swaps the
// scripted scenario for a ChaosGen batch: N generated (topology, plan)
// pairs run through the chaos harness + oracle, with one JSON data point
// per plan tagged by generator seed and plan hash so any point is
// replayable (`chaos-spec v1` from sim/chaos_gen). Scripted mode stays
// the default and its output is untouched.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <set>
#include <string>
#include <vector>

#include "broker/broker_network.hpp"
#include "broker/broker_node.hpp"
#include "broker/chaos.hpp"
#include "broker/client.hpp"
#include "broker/reliable.hpp"
#include "sim/chaos_gen.hpp"
#include "sim/event_loop.hpp"
#include "sim/fault.hpp"
#include "sim/network.hpp"

using namespace gmmcs;

namespace {

constexpr const char* kTopic = "/conf/chaos";

struct Pcts {
  double median_ms = 0.0;
  double p99_ms = 0.0;
  std::size_t count = 0;
};

Pcts percentiles(std::vector<SimDuration> v) {
  Pcts out;
  out.count = v.size();
  if (v.empty()) return out;
  std::sort(v.begin(), v.end());
  out.median_ms = v[v.size() / 2].to_ms();
  auto idx = static_cast<std::size_t>(static_cast<double>(v.size()) * 0.99);
  out.p99_ms = v[std::min(idx, v.size() - 1)].to_ms();
  return out;
}

struct SubStats {
  std::set<std::uint32_t> seqs;  // received publisher sequence numbers
};

bool in_fault_window(const sim::FaultPlan& plan, SimTime t) {
  return plan.active_at(t);
}

int run_generated(std::uint64_t seed, std::uint64_t plans, int workers) {
  sim::ChaosGen gen(seed);
  std::uint64_t passed = 0, violations = 0;
  broker::ChaosMetrics total;
  FILE* json = std::fopen("BENCH_fabric_chaos_generated.json", "w");
  if (json != nullptr) {
    std::fprintf(json, "{\n  \"bench\": \"fabric_chaos_generated\",\n");
    std::fprintf(json, "  \"generator_seed\": %llu,\n  \"plans\": %llu,\n",
                 static_cast<unsigned long long>(seed), static_cast<unsigned long long>(plans));
    std::fprintf(json, "  \"workers\": %d,\n  \"points\": [\n", workers);
  }
  std::printf("=== Fabric chaos: generated plans (seed %llu, %llu plans, %d workers) ===\n",
              static_cast<unsigned long long>(seed), static_cast<unsigned long long>(plans),
              workers);
  for (std::uint64_t i = 0; i < plans; ++i) {
    const sim::ChaosSpec spec = gen.next();
    const broker::ChaosOutcome out = broker::run_chaos(spec, {.workers = workers});
    passed += out.ok() ? 1 : 0;
    violations += out.violations.size();
    const broker::ChaosMetrics& m = out.metrics;
    total.reliable_delivered += m.reliable_delivered;
    total.reliable_recovered += m.reliable_recovered;
    total.reliable_lost += m.reliable_lost;
    total.events_in += m.events_in;
    total.copies_delivered += m.copies_delivered;
    total.route_recomputes += m.route_recomputes;
    total.clients_reaped += m.clients_reaped;
    total.link_states_flooded += m.link_states_flooded;
    if (json != nullptr) {
      std::fprintf(json,
                   "    {\"seed\": %llu, \"plan_hash\": \"%016llx\", \"ok\": %s, "
                   "\"brokers\": %d, \"faults\": %zu, \"reliable_delivered\": %llu, "
                   "\"reliable_recovered\": %llu, \"route_recomputes\": %llu, "
                   "\"clients_reaped\": %llu}%s\n",
                   static_cast<unsigned long long>(spec.seed),
                   static_cast<unsigned long long>(spec.hash()), out.ok() ? "true" : "false",
                   spec.brokers, spec.faults.size(),
                   static_cast<unsigned long long>(m.reliable_delivered),
                   static_cast<unsigned long long>(m.reliable_recovered),
                   static_cast<unsigned long long>(m.route_recomputes),
                   static_cast<unsigned long long>(m.clients_reaped),
                   i + 1 < plans ? "," : "");
    }
    if (!out.ok()) {
      std::printf("plan %llu (seed %llu) VIOLATED:\n",
                  static_cast<unsigned long long>(i),
                  static_cast<unsigned long long>(spec.seed));
      for (const broker::ChaosViolation& v : out.violations) {
        std::printf("  %s: %s\n", v.invariant.c_str(), v.detail.c_str());
      }
      std::printf("replay spec:\n%s", spec.serialize().c_str());
    }
  }
  if (json != nullptr) {
    std::fprintf(json, "  ],\n  \"passed\": %llu,\n  \"violations\": %llu,\n",
                 static_cast<unsigned long long>(passed),
                 static_cast<unsigned long long>(violations));
    std::fprintf(json,
                 "  \"totals\": {\"reliable_delivered\": %llu, \"reliable_recovered\": %llu, "
                 "\"reliable_lost\": %llu, \"events_in\": %llu, \"copies_delivered\": %llu, "
                 "\"route_recomputes\": %llu, \"clients_reaped\": %llu, "
                 "\"link_states_flooded\": %llu}\n}\n",
                 static_cast<unsigned long long>(total.reliable_delivered),
                 static_cast<unsigned long long>(total.reliable_recovered),
                 static_cast<unsigned long long>(total.reliable_lost),
                 static_cast<unsigned long long>(total.events_in),
                 static_cast<unsigned long long>(total.copies_delivered),
                 static_cast<unsigned long long>(total.route_recomputes),
                 static_cast<unsigned long long>(total.clients_reaped),
                 static_cast<unsigned long long>(total.link_states_flooded));
    std::fclose(json);
  }
  std::printf("\n%llu/%llu plans passed the oracle (%llu violations)\n",
              static_cast<unsigned long long>(passed), static_cast<unsigned long long>(plans),
              static_cast<unsigned long long>(violations));
  std::printf("totals: reliable %llu delivered / %llu recovered / %llu lost, "
              "%llu route recomputes, %llu clients reaped, %llu LSAs\n",
              static_cast<unsigned long long>(total.reliable_delivered),
              static_cast<unsigned long long>(total.reliable_recovered),
              static_cast<unsigned long long>(total.reliable_lost),
              static_cast<unsigned long long>(total.route_recomputes),
              static_cast<unsigned long long>(total.clients_reaped),
              static_cast<unsigned long long>(total.link_states_flooded));
  if (json != nullptr) std::printf("wrote BENCH_fabric_chaos_generated.json\n");
  return passed == plans ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool generated = false, quick = false;
  std::uint64_t seed = 20260809, plans = 0;
  int workers = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      generated = true;
      seed = std::strtoull(argv[++i], nullptr, 0);
    } else if (std::strcmp(argv[i], "--plans") == 0 && i + 1 < argc) {
      generated = true;
      plans = std::strtoull(argv[++i], nullptr, 0);
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      generated = true;
      quick = true;
    } else if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc) {
      workers = std::atoi(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--seed S] [--plans N] [--quick] [--workers W]\n"
                   "With no flags, runs the scripted 6-broker scenario.\n",
                   argv[0]);
      return 2;
    }
  }
  if (generated) {
    if (plans == 0) plans = quick ? 5 : 50;
    return run_generated(seed, plans, workers);
  }
  sim::EventLoop loop;
  sim::Network net(loop, 4242);

  broker::BrokerNetwork fabric(net);
  broker::BrokerNode::Config bcfg;
  bcfg.heartbeat.interval = duration_ms(50);
  bcfg.heartbeat.miss_threshold = 3;
  std::vector<sim::Host*> broker_hosts;
  for (int i = 0; i < 6; ++i) {
    sim::Host& h = net.add_host("b" + std::to_string(i));
    broker_hosts.push_back(&h);
    fabric.add_broker(h, bcfg);
  }
  for (int i = 0; i < 6; ++i) fabric.link(i, (i + 1) % 6);
  fabric.finalize();

  // Publisher and the reliable pipeline sit on the never-crashed broker 0;
  // best-effort subscribers sit across the ring (b2: reroute coverage,
  // b5: broker-restart + client-reconnect coverage).
  broker::BrokerClient pub(net.add_host("pub"), fabric.broker(0).stream_endpoint(),
                           {.name = "pub"});
  broker::BrokerClient sub2(net.add_host("sub2"), fabric.broker(2).stream_endpoint(),
                            {.name = "sub2"});
  broker::BrokerClient::Config s5cfg;
  s5cfg.name = "sub5";
  s5cfg.keepalive_interval = duration_ms(100);
  s5cfg.reconnect.enabled = true;
  s5cfg.reconnect.backoff_base = duration_ms(100);
  s5cfg.reconnect.connect_timeout = duration_ms(300);
  broker::BrokerClient sub5(net.add_host("sub5"), fabric.broker(5).stream_endpoint(), s5cfg);

  sim::Host& rsub_host = net.add_host("rsub");
  broker::RecoveryService recovery(net.add_host("recovery"),
                                   fabric.broker(0).stream_endpoint(), kTopic);
  broker::ReliableSubscriber rsub(rsub_host, fabric.broker(0).stream_endpoint(), kTopic,
                                  recovery.endpoint());

  SubStats st2, st5;
  sub2.subscribe(kTopic);
  sub5.subscribe(kTopic);
  sub2.on_event([&](const broker::Event& ev) { st2.seqs.insert(ev.seq); });
  sub5.on_event([&](const broker::Event& ev) { st5.seqs.insert(ev.seq); });

  // --- The fault plan ---
  sim::FaultPlan plan;
  plan.crash_host(broker_hosts[5]->id(), SimTime{duration_ms(1500).ns()},
                  SimTime{duration_ms(2500).ns()});
  plan.crash_host(broker_hosts[1]->id(), SimTime{duration_ms(2000).ns()},
                  SimTime{duration_ms(3500).ns()});
  // Overlap 2.0-2.5 s: both neighbors of broker 0 are dead, transiently
  // partitioning the publisher's broker from the whole ring.
  plan.flap_link(broker_hosts[1]->id(), broker_hosts[2]->id(), SimTime{duration_ms(5000).ns()},
                 SimTime{duration_ms(5800).ns()});
  plan.loss_burst(broker_hosts[0]->id(), rsub_host.id(), SimTime{duration_ms(6500).ns()},
                  SimTime{duration_ms(7000).ns()}, /*loss=*/0.6, /*burst_length=*/4.0);
  plan.install(net);

  // --- Repair / reconnect instrumentation ---
  // Boundary times at which link state genuinely changed; detection
  // latency is measured from the most recent boundary.
  std::vector<SimTime> boundaries = {
      SimTime{duration_ms(1500).ns()}, SimTime{duration_ms(2000).ns()},
      SimTime{duration_ms(2500).ns()}, SimTime{duration_ms(3500).ns()},
      SimTime{duration_ms(5000).ns()}, SimTime{duration_ms(5800).ns()}};
  std::vector<SimDuration> repair_lat;
  fabric.on_route_repair([&](broker::BrokerId, broker::BrokerId, bool, SimTime at) {
    SimTime cause = SimTime::zero();
    for (SimTime b : boundaries) {
      if (b <= at && b > cause) cause = b;
    }
    repair_lat.push_back(at - cause);
  });
  std::vector<SimDuration> reconnect_lat;
  SimTime down_at = SimTime::zero();
  sub5.on_disconnect([&] { down_at = loop.now(); });
  sub5.on_reconnect([&] { reconnect_lat.push_back(loop.now() - down_at); });

  // --- Publish schedule: 50 events/s from 0.5 s to 8.0 s ---
  const SimTime pub_start{duration_ms(500).ns()};
  const SimDuration spacing = duration_ms(20);
  const int n_events = 375;
  std::vector<SimTime> origins;
  for (int i = 0; i < n_events; ++i) {
    SimTime at = pub_start + spacing * i;
    origins.push_back(at);
    loop.schedule_at(at, [&pub] { pub.publish(kTopic, Bytes(256, 0)); });
  }
  loop.run_until(SimTime{duration_s(10).ns()});

  // --- Report ---
  auto ratio = [&](const SubStats& st, bool during_faults) {
    int published = 0, got = 0;
    for (int i = 0; i < n_events; ++i) {
      if (in_fault_window(plan, origins[i]) != during_faults) continue;
      ++published;
      if (st.seqs.contains(static_cast<std::uint32_t>(i))) ++got;
    }
    return published == 0 ? 1.0 : static_cast<double>(got) / published;
  };
  const double sub2_fault = ratio(st2, true), sub2_calm = ratio(st2, false);
  const double sub5_fault = ratio(st5, true), sub5_calm = ratio(st5, false);
  const double eventual =
      static_cast<double>(rsub.delivered()) / static_cast<double>(n_events);
  Pcts repair = percentiles(repair_lat);
  Pcts reconnect = percentiles(reconnect_lat);

  std::printf("=== Fabric chaos: self-healing under injected faults ===\n");
  std::printf("6-broker ring, heartbeat 50 ms x3, %d events @50/s, seed 4242\n\n", n_events);
  std::printf("%-34s %10s %10s\n", "best-effort delivery ratio", "in-fault", "calm");
  std::printf("%-34s %9.1f%% %9.1f%%\n", "  sub on rerouted broker (b2)", sub2_fault * 100,
              sub2_calm * 100);
  std::printf("%-34s %9.1f%% %9.1f%%\n", "  sub on crashed broker (b5)", sub5_fault * 100,
              sub5_calm * 100);
  std::printf("\nreliable profile (NAK/SYNC repair, recovery on b0):\n");
  std::printf("  delivered %llu  recovered %llu  lost %llu  -> eventual ratio %.4f\n",
              static_cast<unsigned long long>(rsub.delivered()),
              static_cast<unsigned long long>(rsub.recovered()),
              static_cast<unsigned long long>(rsub.events_lost()), eventual);
  std::printf("\nself-healing latencies:\n");
  std::printf("  route repair   n=%zu  median %.1f ms  p99 %.1f ms  (%llu recomputes)\n",
              repair.count, repair.median_ms, repair.p99_ms,
              static_cast<unsigned long long>(fabric.route_recomputes()));
  std::printf("  client reconnect n=%zu  median %.1f ms  p99 %.1f ms\n", reconnect.count,
              reconnect.median_ms, reconnect.p99_ms);

  FILE* json = std::fopen("BENCH_fabric_chaos.json", "w");
  if (json != nullptr) {
    std::fprintf(json, "{\n  \"bench\": \"fabric_chaos\",\n  \"seed\": 4242,\n");
    std::fprintf(json, "  \"events_published\": %d,\n", n_events);
    std::fprintf(json,
                 "  \"best_effort\": {\n"
                 "    \"sub_rerouted\": {\"delivery_during_faults\": %.4f, \"calm\": %.4f},\n"
                 "    \"sub_crashed_broker\": {\"delivery_during_faults\": %.4f, \"calm\": "
                 "%.4f}\n  },\n",
                 sub2_fault, sub2_calm, sub5_fault, sub5_calm);
    std::fprintf(json,
                 "  \"reliable\": {\"delivered\": %llu, \"recovered\": %llu, \"lost\": %llu, "
                 "\"eventual_delivery_ratio\": %.4f},\n",
                 static_cast<unsigned long long>(rsub.delivered()),
                 static_cast<unsigned long long>(rsub.recovered()),
                 static_cast<unsigned long long>(rsub.events_lost()), eventual);
    std::fprintf(json,
                 "  \"route_repair_ms\": {\"count\": %zu, \"median\": %.2f, \"p99\": %.2f},\n",
                 repair.count, repair.median_ms, repair.p99_ms);
    std::fprintf(json,
                 "  \"client_reconnect_ms\": {\"count\": %zu, \"median\": %.2f, \"p99\": "
                 "%.2f},\n",
                 reconnect.count, reconnect.median_ms, reconnect.p99_ms);
    std::fprintf(json, "  \"route_recomputes\": %llu\n}\n",
                 static_cast<unsigned long long>(fabric.route_recomputes()));
    std::fclose(json);
    std::printf("\nwrote BENCH_fabric_chaos.json\n");
  }
  return 0;
}
