// Extension bench A8 (DESIGN.md §4): dispatch-pool parallelism.
//
// The paper's broker ran its optimized transmission on what behaves like
// a single dispatch path. This ablation asks what a larger pool buys:
// sweep the number of dispatch workers and find the video-client capacity
// knee (same quality criterion as claims C1/C2).
//
// Each (clients, threads) cell runs under both broker control planes
// (DESIGN.md §12) unless restricted with --snapshot on|off: "locked" is
// the classic per-copy submission path, "snapshot" adds epoch-snapshot
// routing, batched fan-out submission and the virtual-NIC admission gate
// — which is what lets 8 threads keep improving on 4 at 1400+ clients
// instead of stalling on the NIC wall.
//
// Note the two unrelated axes: the *simulated* dispatch-pool size swept
// across columns (cfg.dispatch.threads, changes the modeled system), and
// the *real* EventLoop workers from --workers N (changes only how fast the
// simulation runs — results are byte-identical, see the trailing wall
// column and DESIGN.md §9). --quick runs one small row per plane and
// skips the JSON write (used by sanitizer CI).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>
#include <vector>

#include "core/experiments.hpp"

using namespace gmmcs;

namespace {

struct Point {
  std::string plane;
  int clients = 0;
  int threads = 0;
  core::CapacityPoint p;
};

void write_json(const std::vector<Point>& points) {
  FILE* json = std::fopen("BENCH_dispatch_threads.json", "w");
  if (json == nullptr) return;
  std::fprintf(json, "{\n  \"bench\": \"dispatch_threads\",\n  \"points\": [\n");
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto& pt = points[i];
    std::fprintf(json,
                 "    {\"control_plane\": \"%s\", \"clients\": %d, \"threads\": %d, "
                 "\"avg_delay_ms\": %.3f, \"loss_ratio\": %.5f, \"good_quality\": %s}%s\n",
                 pt.plane.c_str(), pt.clients, pt.threads, pt.p.avg_delay_ms, pt.p.loss_ratio,
                 pt.p.good_quality ? "true" : "false", i + 1 < points.size() ? "," : "");
  }
  // Run log: dated notes on host-side perf work. Emitted here so the
  // checked-in JSON stays byte-identical to a fresh run (the simulated
  // metrics above are deterministic; wall-clock observations live only in
  // these notes and on stdout).
  std::fprintf(json,
               "  ],\n  \"run_log\": [\n"
               "    {\"date\": \"2026-08-07\", \"change\": \"SmallFn completion closures + "
               "recycled slot table for ServiceCenter copy jobs\", "
               "\"wall_clock\": \"interleaved best-of-4 user time 13.98s before vs 13.65s "
               "after; parity within run-to-run noise (simulation event processing "
               "dominates)\", "
               "\"allocations\": \"per warmed copy job >= 3 heap allocations before, <= 1 "
               "after (only the EventLoop callbacks_ map node remains; see ROADMAP) — "
               "certified by ServiceCenterSmallFn.WarmedCopyJobsDoNotAllocate\", "
               "\"metrics\": \"points array byte-identical before/after\"},\n"
               "    {\"date\": \"2026-08-09\", \"change\": \"epoch-snapshot control plane: "
               "lock-free snapshot reads, batched fan-out submission, virtual-NIC admission "
               "gate; broker hosts off the exclusive lane so EventLoop workers parallelise "
               "broker fan-out\", "
               "\"metrics\": \"locked-plane points byte-identical to the pre-snapshot tree; "
               "snapshot plane adds control_plane-tagged points (8 threads now strictly "
               "better than 4 at 1400+ clients)\"}\n");
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::printf("\nwrote BENCH_dispatch_threads.json\n");
}

void plane_sweep(const char* plane_name, broker::DispatchConfig::ControlPlane plane,
                 const std::vector<int>& client_counts, int workers,
                 std::vector<Point>& points) {
  std::printf("\n--- %s control plane ---\n", plane_name);
  std::printf("%10s", "clients");
  const int thread_counts[] = {1, 2, 4, 8};
  for (int t : thread_counts) std::printf(" %11s-%d", "threads", t);
  std::printf(" %10s\n", "row wall");
  for (int clients : client_counts) {
    std::printf("%10d", clients);
    auto row_t0 = std::chrono::steady_clock::now();
    for (int threads : thread_counts) {
      core::CapacityConfig cfg;
      cfg.kind = core::MediaKind::kVideo;
      cfg.clients = clients;
      cfg.seconds = 6.0;
      cfg.dispatch = broker::DispatchConfig::optimized();
      cfg.dispatch.threads = threads;
      cfg.dispatch.control_plane = plane;
      cfg.workers = workers;
      core::CapacityPoint p = core::run_capacity(cfg);
      points.push_back({plane_name, clients, threads, p});
      char cell[32];
      std::snprintf(cell, sizeof cell, "%.0fms %s", p.avg_delay_ms,
                    p.good_quality ? "ok" : "BAD");
      std::printf(" %13s", cell);
    }
    double row_wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - row_t0).count();
    std::printf(" %8.2f s\n", row_wall);
  }
}

}  // namespace

int main(int argc, char** argv) {
  int workers = 1;
  bool run_locked = true;
  bool run_snapshot = true;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    std::string_view arg(argv[i]);
    if (arg == "--workers" && i + 1 < argc) {
      workers = std::atoi(argv[++i]);
    } else if (arg == "--snapshot" && i + 1 < argc) {
      std::string_view v(argv[++i]);
      run_snapshot = v == "on";
      run_locked = v == "off";
    } else if (arg == "--quick") {
      quick = true;
    }
  }
  std::printf("=== Extension A8: dispatch thread-pool scaling ===\n");
  std::printf("600 Kbps video fanout; quality = avg delay < 150 ms, loss < 2%%.\n");
  std::printf("EventLoop workers: %d (wall column only; metrics are invariant).\n", workers);
  std::vector<int> client_counts = {300, 400, 500, 700, 1000, 1400, 2000};
  if (quick) client_counts = {300};
  std::vector<Point> points;
  if (run_locked) {
    plane_sweep("locked", broker::DispatchConfig::ControlPlane::kLocked, client_counts, workers,
                points);
  }
  if (run_snapshot) {
    plane_sweep("snapshot", broker::DispatchConfig::ControlPlane::kSnapshot, client_counts,
                workers, points);
  }
  if (!quick) write_json(points);
  std::printf("\nReading: capacity scales near-linearly with dispatch workers (knee\n");
  std::printf("~420 -> ~800 -> ~1600 clients), confirming the broker was CPU-bound at\n");
  std::printf("the paper's operating point. Under the locked plane, 8 workers hit a\n");
  std::printf("different wall: ~1400 x 600 Kbps exceeds the gigabit NIC, and 'BAD' flips\n");
  std::printf("from delay (CPU queueing) to loss (drop-tail at the NIC) — low delay,\n");
  std::printf("lost frames. The snapshot plane's virtual-NIC admission gate spreads that\n");
  std::printf("burst, so 8 threads stay strictly ahead of 4 at 1400+ clients.\n");
  return 0;
}
