// Reproduces Figure 3 of the paper: average per-packet delay and jitter
// for 12 (of 400 total) video receivers of a 600 Kbps stream, comparing
// NaradaBrokering against the JMF reflector baseline.
//
// Paper reference values: delay  NB 80.76 ms vs JMF 229.23 ms
//                         jitter NB 13.38 ms vs JMF 15.55 ms
//
// --workers N runs on N EventLoop workers; simulated metrics (and the
// JSON) are byte-identical for any N — only wall-clock changes.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string_view>

#include "core/experiments.hpp"

namespace {

void print_series(const char* title, const gmmcs::Series& nb, const gmmcs::Series& jmf,
                  const char* unit) {
  std::printf("\n%s (per packet number, averaged over the 12 measured clients)\n", title);
  std::printf("%10s %18s %18s\n", "packet#", "NaradaBrokering", "JMF");
  gmmcs::Series nb_ds = nb.downsample(20);
  gmmcs::Series jmf_ds = jmf.downsample(20);
  std::size_t n = std::min(nb_ds.points().size(), jmf_ds.points().size());
  for (std::size_t i = 0; i < n; ++i) {
    std::printf("%10.0f %15.2f %s %15.2f %s\n", nb_ds.points()[i].x, nb_ds.points()[i].y, unit,
                jmf_ds.points()[i].y, unit);
  }
}

void write_json(const gmmcs::core::Fig3Result& nb, const gmmcs::core::Fig3Result& jmf) {
  FILE* json = std::fopen("BENCH_fig3_delay_jitter.json", "w");
  if (json == nullptr) return;
  std::fprintf(json, "{\n  \"bench\": \"fig3_delay_jitter\",\n");
  std::fprintf(json, "  \"paper\": {\"nb_delay_ms\": 80.76, \"jmf_delay_ms\": 229.23, "
                     "\"nb_jitter_ms\": 13.38, \"jmf_jitter_ms\": 15.55},\n");
  auto emit = [&](const char* key, const gmmcs::core::Fig3Result& r, const char* tail) {
    std::fprintf(json,
                 "  \"%s\": {\"avg_delay_ms\": %.3f, \"avg_jitter_ms\": %.3f, "
                 "\"loss_ratio\": %.6f, \"stream_kbps\": %.2f}%s\n",
                 key, r.avg_delay_ms, r.avg_jitter_ms, r.loss_ratio, r.stream_kbps, tail);
  };
  emit("narada", nb, ",");
  emit("jmf", jmf, "");
  std::fprintf(json, "}\n");
  std::fclose(json);
  std::printf("\nwrote BENCH_fig3_delay_jitter.json\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gmmcs::core;
  int workers = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--workers" && i + 1 < argc) workers = std::atoi(argv[++i]);
  }
  std::printf("=== Figure 3: NaradaBrokering vs JMF reflector ===\n");
  std::printf("Workload: 1 video sender @600 Kbps, 400 receivers,\n");
  std::printf("12 receivers co-located with the sender are measured.\n");
  std::printf("EventLoop workers: %d (simulated metrics are worker-count invariant).\n", workers);

  auto wall = [](auto t0) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  };
  Fig3Config nb_cfg;
  nb_cfg.fanout = Fanout::kBroker;
  nb_cfg.workers = workers;
  auto t_nb = std::chrono::steady_clock::now();
  Fig3Result nb = run_fig3(nb_cfg);
  double nb_wall = wall(t_nb);

  Fig3Config jmf_cfg;
  jmf_cfg.fanout = Fanout::kJmfReflector;
  jmf_cfg.workers = workers;
  auto t_jmf = std::chrono::steady_clock::now();
  Fig3Result jmf = run_fig3(jmf_cfg);
  double jmf_wall = wall(t_jmf);

  print_series("Average delay per packet", nb.delay_ms, jmf.delay_ms, "ms");
  print_series("Average jitter per packet", nb.jitter_ms, jmf.jitter_ms, "ms");

  std::printf("\n%-28s %14s %14s %12s\n", "summary", "NaradaBrokering", "JMF", "paper(NB/JMF)");
  std::printf("%-28s %11.2f ms %11.2f ms %12s\n", "average delay", nb.avg_delay_ms,
              jmf.avg_delay_ms, "80.76/229.23");
  std::printf("%-28s %11.2f ms %11.2f ms %12s\n", "average jitter", nb.avg_jitter_ms,
              jmf.avg_jitter_ms, "13.38/15.55");
  std::printf("%-28s %13.1fx %14s %12s\n", "delay advantage (NB)",
              jmf.avg_delay_ms / nb.avg_delay_ms, "-", "2.8x");
  std::printf("%-28s %11.4f %%  %11.4f %%\n", "measured loss", nb.loss_ratio * 100.0,
              jmf.loss_ratio * 100.0);
  std::printf("%-28s %11.1f kbps %9.1f kbps\n", "stream bandwidth", nb.stream_kbps,
              jmf.stream_kbps);
  std::printf("%-28s %11.2f s  %11.2f s   (workers=%d, not a simulated metric)\n", "wall clock",
              nb_wall, jmf_wall, workers);
  write_json(nb, jmf);
  return 0;
}
