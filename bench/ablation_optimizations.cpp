// Ablation A1 (DESIGN.md §4): how much of the broker's Figure-3 win comes
// from the paper's "optimizations on the message transmission of
// NaradaBrokering"? Runs the same 400-receiver workload with the
// optimized dispatch path, the pre-optimization path, and the JMF
// baseline, at two audience sizes.
#include <cstdio>

#include "core/experiments.hpp"

using namespace gmmcs;

namespace {

void row(core::Fanout fanout, int receivers) {
  core::Fig3Config cfg;
  cfg.fanout = fanout;
  cfg.receivers = receivers;
  cfg.measured = std::min(12, receivers);
  cfg.packets = 1000;
  core::Fig3Result r = core::run_fig3(cfg);
  std::printf("%-30s %9d %12.2f ms %9.2f ms %10.3f%%\n", core::to_string(fanout), receivers,
              r.avg_delay_ms, r.avg_jitter_ms, r.loss_ratio * 100.0);
}

}  // namespace

int main() {
  std::printf("=== Ablation A1: broker transmission optimizations ===\n");
  std::printf("Workload: 600 Kbps video fanout, 1000 packets measured.\n\n");
  std::printf("%-30s %9s %15s %12s %11s\n", "system", "receivers", "avg delay", "jitter",
              "loss");
  for (int receivers : {200, 400}) {
    row(core::Fanout::kBroker, receivers);
    row(core::Fanout::kBrokerNaive, receivers);
    row(core::Fanout::kJmfReflector, receivers);
    std::printf("\n");
  }
  std::printf("Reading: at 200 receivers every system keeps up; at the paper's 400\n");
  std::printf("the pre-optimization dispatch path saturates (unbounded queue growth)\n");
  std::printf("while the optimized path holds tens of milliseconds — the optimizations\n");
  std::printf("are what made \"excellent performance for A/V communication\" possible.\n");
  return 0;
}
