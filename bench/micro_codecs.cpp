// Extension bench A5 (DESIGN.md §4): micro-benchmarks of the hot codec
// and matching paths, via google-benchmark. These are the per-message
// costs every experiment above pays millions of times: RTP and broker
// event serialization, SIP/RTSP/XML text parsing, topic filter matching,
// and the discrete-event core itself.
#include <benchmark/benchmark.h>

#include "broker/event.hpp"
#include "broker/topic.hpp"
#include "rtp/packet.hpp"
#include "sim/event_loop.hpp"
#include "sip/message.hpp"
#include "xgsp/messages.hpp"
#include "xml/xml.hpp"

using namespace gmmcs;

namespace {

void BM_RtpSerialize(benchmark::State& state) {
  rtp::RtpPacket p;
  p.ssrc = 42;
  p.payload = Bytes(static_cast<std::size_t>(state.range(0)), 0xAB);
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.serialize());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_RtpSerialize)->Arg(160)->Arg(960);

void BM_RtpParse(benchmark::State& state) {
  rtp::RtpPacket p;
  p.ssrc = 42;
  p.payload = Bytes(static_cast<std::size_t>(state.range(0)), 0xAB);
  const Payload wire{p.serialize()};
  for (auto _ : state) {
    benchmark::DoNotOptimize(rtp::RtpPacket::parse(wire));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_RtpParse)->Arg(160)->Arg(960);

void BM_BrokerEventRoundTrip(benchmark::State& state) {
  broker::Event ev;
  ev.topic = "/xgsp/session/12345/video";
  ev.payload = Bytes(972, 0xCD);
  for (auto _ : state) {
    Payload wire{broker::encode(ev)};
    benchmark::DoNotOptimize(broker::decode(wire));
  }
}
BENCHMARK(BM_BrokerEventRoundTrip);

void BM_TopicFilterMatch(benchmark::State& state) {
  broker::TopicFilter exact("/xgsp/session/42/video");
  broker::TopicFilter star("/xgsp/session/*/video");
  broker::TopicFilter hash("/xgsp/session/42/#");
  std::string topic = "/xgsp/session/42/video";
  for (auto _ : state) {
    benchmark::DoNotOptimize(exact.matches(topic));
    benchmark::DoNotOptimize(star.matches(topic));
    benchmark::DoNotOptimize(hash.matches(topic));
  }
}
BENCHMARK(BM_TopicFilterMatch);

void BM_SipParse(benchmark::State& state) {
  sip::SipMessage inv = sip::SipMessage::request("INVITE", "sip:conf-7@gmmcs",
                                                 "sip:alice@iu.edu", "sip:conf-7@gmmcs",
                                                 "call-123", 1);
  inv.set_header("Contact", "sim:9:5060");
  inv.body = "v=0\r\no=- 0 0 IN SIM 9\r\ns=x\r\nc=IN SIM 9\r\nt=0 0\r\n"
             "m=video 5004 RTP/AVP 31\r\na=rtpmap:31 H261/90000\r\n";
  std::string text = inv.serialize();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sip::SipMessage::parse(text));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(text.size()));
}
BENCHMARK(BM_SipParse);

void BM_XgspMessageRoundTrip(benchmark::State& state) {
  xgsp::Message m = xgsp::Message::create_session(
      "weekly", "gcf", xgsp::SessionMode::kScheduled, {{"audio", "PCMU"}, {"video", "H261"}});
  for (auto _ : state) {
    std::string text = m.serialize();
    benchmark::DoNotOptimize(xgsp::Message::parse(text));
  }
}
BENCHMARK(BM_XgspMessageRoundTrip);

void BM_XmlParse(benchmark::State& state) {
  xml::Element root("session");
  root.set_attr("id", "42");
  for (int i = 0; i < 20; ++i) {
    xml::Element& p = root.add_child("participant");
    p.set_attr("user", "user-" + std::to_string(i));
    p.set_attr("kind", "sip");
  }
  std::string text = root.serialize();
  for (auto _ : state) {
    benchmark::DoNotOptimize(xml::parse(text));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(text.size()));
}
BENCHMARK(BM_XmlParse);

void BM_EventLoopScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::EventLoop loop;
    for (int i = 0; i < 1000; ++i) {
      loop.schedule_at(SimTime{i * 1000}, [] {});
    }
    loop.run();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 1000);
}
BENCHMARK(BM_EventLoopScheduleRun);

}  // namespace

BENCHMARK_MAIN();
