// Extension bench A2 (DESIGN.md §4): the distributed broker fabric.
//
// The paper's measurements use a single broker; its architecture section
// (§2.3) rests on "a dynamic collection of brokers". This bench measures
// what the fabric adds: per-hop delay across chain topologies, fanout
// sharing on shared paths, and a hierarchical (cluster-addressed)
// deployment serving subscribers in every cluster.
#include <cstdio>
#include <memory>
#include <vector>

#include "broker/broker_network.hpp"
#include "broker/client.hpp"
#include "media/probe.hpp"
#include "media/stamp.hpp"
#include "rtp/packet.hpp"
#include "sim/event_loop.hpp"
#include "sim/network.hpp"

using namespace gmmcs;

namespace {

/// Publishes `packets` RTP packets on b0 and measures delay at a
/// subscriber attached to the last broker of a chain of `hops+1` brokers.
void chain_row(int hops, int packets) {
  sim::EventLoop loop;
  sim::Network net(loop, 7);
  net.set_default_path(sim::PathConfig{.latency = duration_ms(5)});  // WAN-ish links
  broker::BrokerNetwork fabric(net);
  for (int i = 0; i <= hops; ++i) {
    fabric.add_broker(net.add_host("b" + std::to_string(i)));
  }
  for (int i = 0; i < hops; ++i) {
    fabric.link(static_cast<broker::BrokerId>(i), static_cast<broker::BrokerId>(i + 1));
  }
  fabric.finalize();
  broker::BrokerClient pub(net.add_host("pub"), fabric.broker(0).stream_endpoint());
  broker::BrokerClient sub(net.add_host("sub"),
                           fabric.broker(static_cast<broker::BrokerId>(hops)).stream_endpoint());
  sub.subscribe("/lecture/video");
  media::MediaProbe probe(90000);
  std::uint8_t seen_hops = 0;
  sub.on_event([&](const broker::Event& ev) {
    probe.on_wire(ev.payload, loop.now());
    seen_hops = ev.hops;
  });
  loop.run();
  for (int i = 0; i < packets; ++i) {
    rtp::RtpPacket p;
    p.ssrc = 1;
    p.sequence = static_cast<std::uint16_t>(i);
    p.timestamp = 3600u * static_cast<std::uint32_t>(i);
    Bytes media(960, 0);
    media::embed_origin(media, loop.now());
    p.payload = std::move(media);
    pub.publish("/lecture/video", p.serialize());
    loop.run_for(duration_ms(40));
  }
  loop.run();
  std::printf("%8d %10u %14.2f ms %11.2f ms\n", hops, seen_hops, probe.stats().delay_ms().mean(),
              probe.stats().delay_ms().max());
}

void fanout_sharing() {
  // Chain b0-b1-b2 with N subscribers at b2: b0 must send ONE copy toward
  // b2 per event regardless of N (the target-set routing of §2.3).
  sim::EventLoop loop;
  sim::Network net(loop, 9);
  broker::BrokerNetwork fabric(net);
  for (int i = 0; i < 3; ++i) fabric.add_broker(net.add_host("b" + std::to_string(i)));
  fabric.link(0, 1);
  fabric.link(1, 2);
  fabric.finalize();
  broker::BrokerClient pub(net.add_host("pub"), fabric.broker(0).stream_endpoint());
  std::vector<std::unique_ptr<broker::BrokerClient>> subs;
  for (int i = 0; i < 50; ++i) {
    subs.push_back(std::make_unique<broker::BrokerClient>(
        net.add_host("s" + std::to_string(i)), fabric.broker(2).stream_endpoint()));
    subs.back()->subscribe("/t");
  }
  loop.run();
  for (int i = 0; i < 20; ++i) pub.publish("/t", Bytes(500, 0));
  loop.run();
  std::printf("\nfanout sharing: 20 events, 50 subscribers at a 2-hop broker\n");
  std::printf("  events forwarded by origin broker: %llu (one per event, not per subscriber)\n",
              static_cast<unsigned long long>(fabric.broker(0).peer_forwards()));
  std::printf("  copies delivered by edge broker:   %llu\n",
              static_cast<unsigned long long>(fabric.broker(2).copies_delivered()));
}

void hierarchy() {
  // 3 super-clusters x 2 clusters x 2 nodes; one subscriber per broker.
  sim::EventLoop loop;
  sim::Network net(loop, 13);
  net.set_default_path(sim::PathConfig{.latency = duration_ms(2)});
  broker::BrokerNetwork fabric(net);
  for (int sc = 0; sc < 3; ++sc) {
    for (int c = 0; c < 2; ++c) {
      for (int n = 0; n < 2; ++n) {
        broker::BrokerNode& b = fabric.add_broker(net.add_host(
            "b" + std::to_string(sc) + std::to_string(c) + std::to_string(n)));
        fabric.set_address(b.id(), broker::ClusterAddress{sc, c, n});
      }
    }
  }
  fabric.link_hierarchy();
  std::vector<std::unique_ptr<broker::BrokerClient>> subs;
  std::vector<std::unique_ptr<media::MediaProbe>> probes;
  for (std::size_t i = 0; i < fabric.broker_count(); ++i) {
    subs.push_back(std::make_unique<broker::BrokerClient>(
        net.add_host("sub" + std::to_string(i)),
        fabric.broker(static_cast<broker::BrokerId>(i)).stream_endpoint()));
    subs.back()->subscribe("/global/av");
    probes.push_back(std::make_unique<media::MediaProbe>(90000));
    auto* probe = probes.back().get();
    subs.back()->on_event(
        [probe, &loop](const broker::Event& ev) { probe->on_wire(ev.payload, loop.now()); });
  }
  broker::BrokerClient pub(net.add_host("pub"), fabric.broker(0).stream_endpoint());
  loop.run();
  for (int i = 0; i < 50; ++i) {
    rtp::RtpPacket p;
    p.ssrc = 2;
    p.sequence = static_cast<std::uint16_t>(i);
    Bytes media(960, 0);
    media::embed_origin(media, loop.now());
    p.payload = std::move(media);
    pub.publish("/global/av", p.serialize());
    loop.run_for(duration_ms(40));
  }
  loop.run();
  std::printf("\nhierarchical fabric (3 super-clusters x 2 clusters x 2 nodes):\n");
  std::printf("%20s %10s %14s\n", "subscriber-broker", "distance", "mean delay");
  for (std::size_t i = 0; i < probes.size(); ++i) {
    std::printf("%20s %10d %11.2f ms\n",
                fabric.address(static_cast<broker::BrokerId>(i)).to_string().c_str(),
                fabric.distance(0, static_cast<broker::BrokerId>(i)),
                probes[i]->stats().delay_ms().mean());
  }
}

}  // namespace

int main() {
  std::printf("=== Extension A2: distributed broker fabric ===\n\n");
  std::printf("chain topologies, 5 ms links, 960-byte video packets:\n");
  std::printf("%8s %10s %17s %14s\n", "hops", "ev.hops", "mean delay", "max delay");
  for (int hops : {0, 1, 2, 4, 8}) chain_row(hops, 100);
  fanout_sharing();
  hierarchy();
  return 0;
}
