// Extension bench A6 (DESIGN.md §4): client-server vs peer-to-peer mode.
//
// The paper claims NaradaBrokering "can allow optimized performance-
// functionality trade-offs" by combining a JMS-like client-server mode
// with a JXTA-like P2P mode. This bench quantifies the trade-off: one
// video publisher, N subscribers, comparing end-to-end delay and the
// publisher's fanout CPU burden as the group grows.
#include <cstdio>
#include <memory>
#include <vector>

#include "broker/broker_node.hpp"
#include "broker/client.hpp"
#include "broker/p2p.hpp"
#include "media/probe.hpp"
#include "media/stamp.hpp"
#include "rtp/packet.hpp"
#include "sim/event_loop.hpp"
#include "sim/network.hpp"

using namespace gmmcs;

namespace {

constexpr int kPackets = 150;

Bytes make_packet(sim::EventLoop& loop, int i) {
  rtp::RtpPacket p;
  p.ssrc = 1;
  p.sequence = static_cast<std::uint16_t>(i);
  p.timestamp = 3600u * static_cast<std::uint32_t>(i);
  Bytes media(960, 0);
  media::embed_origin(media, loop.now());
  p.payload = std::move(media);
  return p.serialize();
}

struct Row {
  double delay_ms = 0;
  double sender_cpu_ms = 0;
};

Row run_broker(int subscribers) {
  sim::EventLoop loop;
  sim::Network net(loop, 5);
  net.set_default_path(sim::PathConfig{.latency = duration_us(500)});
  broker::BrokerNode node(net.add_host("broker"), 0);
  broker::BrokerClient pub(net.add_host("pub"), node.stream_endpoint());
  std::vector<std::unique_ptr<broker::BrokerClient>> subs;
  std::vector<std::unique_ptr<media::MediaProbe>> probes;
  for (int i = 0; i < subscribers; ++i) {
    subs.push_back(std::make_unique<broker::BrokerClient>(
        net.add_host("s" + std::to_string(i)), node.stream_endpoint()));
    subs.back()->subscribe("/av");
    probes.push_back(std::make_unique<media::MediaProbe>(90000));
    auto* probe = probes.back().get();
    subs.back()->on_event(
        [probe, &loop](const broker::Event& ev) { probe->on_wire(ev.payload, loop.now()); });
  }
  loop.run();
  for (int i = 0; i < kPackets; ++i) {
    pub.publish("/av", make_packet(loop, i));
    loop.run_for(duration_ms(40));
  }
  loop.run();
  RunningStats delay;
  for (auto& probe : probes) delay.add(probe->stats().delay_ms().mean());
  return {delay.mean(), 0.0};  // broker mode: publisher does no fanout work
}

Row run_p2p(int subscribers) {
  sim::EventLoop loop;
  sim::Network net(loop, 5);
  net.set_default_path(sim::PathConfig{.latency = duration_us(500)});
  broker::P2pMesh mesh;
  broker::P2pPeer pub(net.add_host("pub"), mesh, "pub");
  std::vector<std::unique_ptr<broker::P2pPeer>> peers;
  std::vector<std::unique_ptr<media::MediaProbe>> probes;
  for (int i = 0; i < subscribers; ++i) {
    peers.push_back(std::make_unique<broker::P2pPeer>(net.add_host("p" + std::to_string(i)),
                                                      mesh, "p" + std::to_string(i)));
    peers.back()->subscribe("/av");
    probes.push_back(std::make_unique<media::MediaProbe>(90000));
    auto* probe = probes.back().get();
    peers.back()->on_event(
        [probe, &loop](const broker::Event& ev) { probe->on_wire(ev.payload, loop.now()); });
  }
  for (int i = 0; i < kPackets; ++i) {
    pub.publish("/av", make_packet(loop, i));
    loop.run_for(duration_ms(40));
  }
  loop.run();
  RunningStats delay;
  for (auto& probe : probes) delay.add(probe->stats().delay_ms().mean());
  return {delay.mean(), pub.fanout_cpu().to_ms() / kPackets};
}

}  // namespace

int main() {
  std::printf("=== Extension A6: client-server (JMS) vs peer-to-peer (JXTA) mode ===\n");
  std::printf("One 600 Kbps-class publisher, N subscribers, 0.5 ms links.\n\n");
  std::printf("%6s | %16s | %16s %18s\n", "N", "broker delay", "p2p delay",
              "p2p sender CPU/pkt");
  for (int n : {1, 2, 5, 10, 25, 50, 100}) {
    Row b = run_broker(n);
    Row p = run_p2p(n);
    std::printf("%6d | %13.2f ms | %13.2f ms %15.3f ms\n", n, b.delay_ms, p.delay_ms,
                p.sender_cpu_ms);
  }
  std::printf("\nReading: P2P avoids the extra broker hop (lower delay for small\n");
  std::printf("groups) but the publisher pays the whole fanout; as N grows the\n");
  std::printf("sending client's per-packet CPU approaches the media frame interval\n");
  std::printf("and the dedicated broker wins — the trade-off the paper describes.\n");
  return 0;
}
