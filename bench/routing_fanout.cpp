// Host-CPU microbench of the broker routing fast path (not a simulation:
// this measures the real matching + fan-out work the simulator pays per
// routed event, the overhead the SubscriptionIndex + encode-once path
// removes).
//
// Two comparisons, at 10/100/400/1000 subscribers, exact-only and with a
// wildcard mix:
//
//  * topic matching: the pre-index O(subscribers x filters) scan vs the
//    exact-topic hash index with its per-topic match cache;
//  * full fan-out: per-recipient Event copy + encode() (the old copy jobs)
//    vs one shared RoutedEvent whose wire frame is encoded once and only
//    byte-copied per recipient.
//
// Emits BENCH_routing_fanout.json (machine-readable trajectory record)
// alongside the human table.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "broker/event.hpp"
#include "broker/subscription_index.hpp"
#include "broker/topic.hpp"
#include "common/payload.hpp"

namespace {

using namespace gmmcs;
using namespace gmmcs::broker;
using Clock = std::chrono::steady_clock;

constexpr std::size_t kPayloadBytes = 1200;  // ~one 600 Kbps video packet
const std::string kTopic = "/xgsp/session/42/video/1";

/// The pre-index matcher: every subscriber, every filter, full segment
/// comparison per published event (the seed BrokerNode::local_matches).
struct NaiveTable {
  std::vector<std::pair<std::uint32_t, std::vector<TopicFilter>>> subs;

  [[nodiscard]] std::vector<std::uint32_t> matches(const std::string& topic) const {
    std::vector<std::uint32_t> out;
    for (const auto& [id, filters] : subs) {
      for (const auto& f : filters) {
        if (f.matches(topic)) {
          out.push_back(id);
          break;
        }
      }
    }
    return out;
  }
};

/// Filter pattern for subscriber i: mostly exact, every 10th a wildcard
/// when `wildcards` is on (a media session mix: most receivers subscribe
/// the concrete stream topic, a few monitor whole sessions).
std::string filter_for(int i, bool wildcards) {
  if (wildcards && i % 10 == 0) {
    return (i % 20 == 0) ? "/xgsp/session/42/#" : "/xgsp/session/*/video/1";
  }
  return kTopic;
}

Event make_event() {
  Event ev;
  ev.topic = kTopic;
  ev.payload = Bytes(kPayloadBytes, 0x5a);
  ev.seq = 7;
  return ev;
}

/// Runs `body(iters)` enough times to pass min_seconds; returns ops/sec
/// where one op = one call of body's unit of work.
template <class Body>
double rate_per_sec(double min_seconds, Body body) {
  std::size_t iters = 1;
  for (;;) {
    auto t0 = Clock::now();
    std::size_t sink = 0;
    for (std::size_t i = 0; i < iters; ++i) sink += body();
    auto dt = std::chrono::duration<double>(Clock::now() - t0).count();
    // Keep the side effect alive without printing it.
    static volatile std::size_t g_sink;
    g_sink = sink;
    if (dt >= min_seconds) return static_cast<double>(iters) / dt;
    iters = (dt <= 0) ? iters * 16 : static_cast<std::size_t>(iters * (min_seconds * 1.3 / dt)) + 1;
  }
}

struct Point {
  int subscribers = 0;
  bool wildcards = false;
  double naive_match_per_sec = 0;
  double indexed_match_per_sec = 0;
  double match_speedup = 0;
  double naive_events_per_sec = 0;
  double fast_events_per_sec = 0;
  double fanout_speedup = 0;
  double naive_encodes_per_delivery = 0;
  double fast_encodes_per_delivery = 0;
  std::uint64_t fast_payload_copies = 0;
  std::uint64_t fast_payload_bytes_copied = 0;
};

Point run_point(int n, bool wildcards) {
  Point p;
  p.subscribers = n;
  p.wildcards = wildcards;

  NaiveTable naive;
  SubscriptionIndex index;
  for (int i = 0; i < n; ++i) {
    auto id = static_cast<std::uint32_t>(i + 1);
    TopicFilter f(filter_for(i, wildcards));
    naive.subs.push_back({id, {f}});
    index.subscribe(id, f);
  }

  // --- Matching only ---
  p.naive_match_per_sec = rate_per_sec(0.2, [&] { return naive.matches(kTopic).size(); });
  p.indexed_match_per_sec = rate_per_sec(0.2, [&] { return index.matches(kTopic).size(); });
  p.match_speedup = p.indexed_match_per_sec / p.naive_match_per_sec;

  // --- Full fan-out: route one event to every match ---
  const Event ev = make_event();

  std::uint64_t enc0 = event_encode_count();
  std::uint64_t naive_events = 0, naive_deliveries = 0;
  p.naive_events_per_sec = rate_per_sec(0.3, [&] {
    ++naive_events;
    std::size_t bytes = 0;
    for (std::uint32_t id : naive.matches(kTopic)) {
      Event per_recipient = ev;  // the old per-copy-job Event capture
      per_recipient.publisher = id;
      bytes += encode(per_recipient).size();  // per-recipient re-encode
      ++naive_deliveries;
    }
    return bytes;
  });
  p.naive_encodes_per_delivery =
      static_cast<double>(event_encode_count() - enc0) / static_cast<double>(naive_deliveries);

  enc0 = event_encode_count();
  std::uint64_t cp0 = payload_copy_count();
  std::uint64_t cb0 = payload_bytes_copied();
  std::uint64_t fast_events = 0, fast_deliveries = 0;
  p.fast_events_per_sec = rate_per_sec(0.3, [&] {
    ++fast_events;
    RoutedEvent routed(ev);  // shared by the whole fan-out
    std::size_t bytes = 0;
    for (std::uint32_t id : index.matches(kTopic)) {
      (void)id;
      const Payload wire = routed.wire();  // per-recipient handle: refcount bump only
      bytes += wire.size();
      ++fast_deliveries;
    }
    return bytes;
  });
  p.fast_encodes_per_delivery =
      static_cast<double>(event_encode_count() - enc0) / static_cast<double>(fast_deliveries);
  // Copy-discipline witness: the shared-frame fan-out must not deep-copy
  // payload bytes, however wide the fan-out.
  p.fast_payload_copies = payload_copy_count() - cp0;
  p.fast_payload_bytes_copied = payload_bytes_copied() - cb0;
  p.fanout_speedup = p.fast_events_per_sec / p.naive_events_per_sec;
  return p;
}

}  // namespace

int main() {
  std::printf("=== Routing fast path microbench (host CPU, payload %zu B) ===\n", kPayloadBytes);
  std::printf("%6s %5s | %14s %14s %8s | %14s %14s %8s | %9s %9s\n", "subs", "wild",
              "naive match/s", "index match/s", "speedup", "naive evt/s", "fast evt/s", "speedup",
              "enc/del", "enc/del");
  std::vector<Point> points;
  for (bool wildcards : {false, true}) {
    for (int n : {10, 100, 400, 1000}) {
      Point p = run_point(n, wildcards);
      points.push_back(p);
      std::printf("%6d %5s | %14.0f %14.0f %7.1fx | %14.0f %14.0f %7.1fx | %9.4f %9.4f\n",
                  p.subscribers, p.wildcards ? "yes" : "no", p.naive_match_per_sec,
                  p.indexed_match_per_sec, p.match_speedup, p.naive_events_per_sec,
                  p.fast_events_per_sec, p.fanout_speedup, p.naive_encodes_per_delivery,
                  p.fast_encodes_per_delivery);
    }
  }

  FILE* json = std::fopen("BENCH_routing_fanout.json", "w");
  if (json != nullptr) {
    std::fprintf(json, "{\n  \"bench\": \"routing_fanout\",\n  \"payload_bytes\": %zu,\n",
                 kPayloadBytes);
    std::fprintf(json, "  \"points\": [\n");
    for (std::size_t i = 0; i < points.size(); ++i) {
      const Point& p = points[i];
      std::fprintf(json,
                   "    {\"subscribers\": %d, \"wildcards\": %s, "
                   "\"naive_match_per_sec\": %.0f, \"indexed_match_per_sec\": %.0f, "
                   "\"match_speedup\": %.2f, "
                   "\"naive_events_per_sec\": %.0f, \"fast_events_per_sec\": %.0f, "
                   "\"fanout_speedup\": %.2f, "
                   "\"naive_encodes_per_delivery\": %.4f, \"fast_encodes_per_delivery\": %.4f, "
                   "\"fast_payload_copies\": %llu, \"fast_payload_bytes_copied\": %llu}%s\n",
                   p.subscribers, p.wildcards ? "true" : "false", p.naive_match_per_sec,
                   p.indexed_match_per_sec, p.match_speedup, p.naive_events_per_sec,
                   p.fast_events_per_sec, p.fanout_speedup, p.naive_encodes_per_delivery,
                   p.fast_encodes_per_delivery,
                   static_cast<unsigned long long>(p.fast_payload_copies),
                   static_cast<unsigned long long>(p.fast_payload_bytes_copied),
                   i + 1 < points.size() ? "," : "");
    }
    std::fprintf(json, "  ]\n}\n");
    std::fclose(json);
    std::printf("\nwrote BENCH_routing_fanout.json\n");
  }
  return 0;
}
