# One binary per reproduced table/figure plus extension benches
# (experiment index in DESIGN.md section 4). Included from the top-level
# CMakeLists so ${CMAKE_BINARY_DIR}/bench contains only runnable binaries.
function(gmmcs_bench name)
  add_executable(${name} bench/${name}.cpp)
  target_link_libraries(${name} PRIVATE gmmcs_core)
  set_target_properties(${name} PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endfunction()

gmmcs_bench(fig3_delay_jitter)       # Figure 3 (delay + jitter)
gmmcs_bench(broker_capacity)         # Claims C1/C2
gmmcs_bench(ablation_optimizations)  # A1
gmmcs_bench(broker_network)          # A2
gmmcs_bench(gateway_signaling)       # A3
gmmcs_bench(streaming_pipeline)      # A4
gmmcs_bench(p2p_tradeoff)            # A6
gmmcs_bench(reliable_delivery)       # A7
gmmcs_bench(dispatch_threads)        # A8
gmmcs_bench(routing_fanout)          # host-CPU fast-path microbench
gmmcs_bench(fabric_chaos)            # self-healing under injected faults

add_executable(micro_codecs bench/micro_codecs.cpp)  # A5
target_link_libraries(micro_codecs PRIVATE gmmcs_core benchmark::benchmark)
set_target_properties(micro_codecs PROPERTIES
  RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
