// Reproduces the paper's §3.2 capacity claims:
//   "one broker can support more than a thousand audio clients or more
//    than 400 video clients at one time providing a very good quality"
//
// Sweeps receiver counts for a single broker carrying one 64 Kbps G.711
// audio stream or one 600 Kbps video stream and reports delay/loss with
// the paper's quality criterion (avg delay < 150 ms, loss < 2%).
// Alongside the table it writes BENCH_broker_capacity.json so the bench
// trajectory is machine-readable.
//
// Both broker control planes run by default so before/after knees land in
// one file (DESIGN.md §12): "locked" is the classic serial dispatch path,
// "snapshot" is the epoch-snapshot plane (lock-free readers, batched
// fan-out, 8 simulated dispatch threads). The snapshot video sweep
// extends past 600 clients because that is where its knee lives.
//
//   --snapshot on|off   restrict to one control plane (default: both)
//   --workers N         run the simulation on N EventLoop workers
//                       (default 1); simulated metrics — table values and
//                       the JSON file — are byte-identical for any N
//                       (DESIGN.md §9), only the wall column may change
//   --quick             one small point per sweep, no JSON write; used by
//                       the TSan CI job to race-test broker fan-out under
//                       --workers 8 without paying for the full sweep
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>
#include <vector>

#include "common/payload.hpp"
#include "core/experiments.hpp"

namespace {

struct JsonPoint {
  std::string sweep;
  std::string plane;
  gmmcs::core::CapacityPoint p;
  // Copy-discipline counters across the point's run: steady-state broker
  // fan-out must not deep-copy payload bytes, so both stay 0.
  std::uint64_t payload_copies = 0;
  std::uint64_t payload_bytes = 0;
};

std::vector<JsonPoint> g_points;
int g_workers = 1;

double wall_seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

void sweep(gmmcs::core::MediaKind kind, const char* title, const char* key,
           const char* plane_name, const gmmcs::broker::DispatchConfig& dispatch,
           const std::vector<int>& counts, int paper_claim) {
  using namespace gmmcs::core;
  std::printf("\n=== %s [%s control plane] (paper claim: good quality beyond %d clients) ===\n",
              title, plane_name, paper_claim);
  std::printf("%10s %14s %16s %10s %12s %10s %10s\n", "clients", "avg delay", "per-client max",
              "loss", "offered", "quality", "wall");
  int last_good = 0;
  for (int n : counts) {
    CapacityConfig cfg;
    cfg.kind = kind;
    cfg.clients = n;
    cfg.dispatch = dispatch;
    cfg.workers = g_workers;
    auto t0 = std::chrono::steady_clock::now();
    std::uint64_t cp0 = gmmcs::payload_copy_count();
    std::uint64_t cb0 = gmmcs::payload_bytes_copied();
    CapacityPoint p = run_capacity(cfg);
    std::uint64_t cp = gmmcs::payload_copy_count() - cp0;
    std::uint64_t cb = gmmcs::payload_bytes_copied() - cb0;
    double wall_s = wall_seconds_since(t0);
    std::printf("%10d %11.2f ms %13.2f ms %9.3f%% %9.1f Mbps %10s %8.2f s\n", p.clients,
                p.avg_delay_ms, p.p99_delay_ms, p.loss_ratio * 100.0, p.offered_mbps,
                p.good_quality ? "good" : "DEGRADED", wall_s);
    if (p.good_quality) last_good = n;
    g_points.push_back({key, plane_name, p, cp, cb});
  }
  std::printf("  -> largest good-quality client count in sweep: %d (paper: >%d)\n", last_good,
              paper_claim);
}

void write_json() {
  FILE* json = std::fopen("BENCH_broker_capacity.json", "w");
  if (json == nullptr) return;
  std::fprintf(json, "{\n  \"bench\": \"broker_capacity\",\n  \"points\": [\n");
  for (std::size_t i = 0; i < g_points.size(); ++i) {
    const auto& [sweep_key, plane, p, copies, copied_bytes] = g_points[i];
    std::fprintf(json,
                 "    {\"sweep\": \"%s\", \"control_plane\": \"%s\", \"clients\": %d, "
                 "\"avg_delay_ms\": %.3f, \"p99_delay_ms\": %.3f, \"loss_ratio\": %.5f, "
                 "\"offered_mbps\": %.2f, \"good_quality\": %s, "
                 "\"payload_copy_count\": %llu, \"payload_bytes_copied\": %llu}%s\n",
                 sweep_key.c_str(), plane.c_str(), p.clients, p.avg_delay_ms, p.p99_delay_ms,
                 p.loss_ratio, p.offered_mbps, p.good_quality ? "true" : "false",
                 static_cast<unsigned long long>(copies),
                 static_cast<unsigned long long>(copied_bytes),
                 i + 1 < g_points.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::printf("\nwrote BENCH_broker_capacity.json\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gmmcs::core;
  using gmmcs::broker::DispatchConfig;
  bool run_locked = true;
  bool run_snapshot = true;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    std::string_view arg(argv[i]);
    if (arg == "--workers" && i + 1 < argc) {
      g_workers = std::atoi(argv[++i]);
    } else if (arg == "--snapshot" && i + 1 < argc) {
      std::string_view v(argv[++i]);
      run_snapshot = v == "on";
      run_locked = v == "off";
    } else if (arg == "--quick") {
      quick = true;
    }
  }
  std::printf("=== Broker capacity (claims C1/C2, DESIGN.md section 4) ===\n");
  std::printf("Quality criterion: avg delay < 150 ms and loss < 2%%.\n");
  std::printf("EventLoop workers: %d (simulated metrics are worker-count invariant).\n",
              g_workers);

  std::vector<int> audio_counts = {200, 400, 600, 800, 1000, 1200, 1400, 1600, 1800};
  std::vector<int> video_counts = {100, 200, 300, 400, 420, 440, 470, 500, 600};
  // The snapshot plane's video knee lives beyond the locked sweep's range.
  std::vector<int> video_snapshot_counts = {100, 200, 300, 400, 420, 440, 470,
                                            500, 600, 800, 1000, 1200};
  if (quick) {
    audio_counts = {200};
    video_counts = {100};
    video_snapshot_counts = {100};
  }

  if (run_locked) {
    sweep(MediaKind::kAudio, "C1: audio clients per broker (64 Kbps G.711)", "audio", "locked",
          DispatchConfig::optimized(), audio_counts, 1000);
    sweep(MediaKind::kVideo, "C2: video clients per broker (600 Kbps)", "video", "locked",
          DispatchConfig::optimized(), video_counts, 400);
  }
  if (run_snapshot) {
    sweep(MediaKind::kAudio, "C1: audio clients per broker (64 Kbps G.711)", "audio", "snapshot",
          DispatchConfig::snapshot(), audio_counts, 1000);
    sweep(MediaKind::kVideo, "C2: video clients per broker (600 Kbps)", "video", "snapshot",
          DispatchConfig::snapshot(), video_snapshot_counts, 400);
  }
  if (!quick) write_json();
  return 0;
}
