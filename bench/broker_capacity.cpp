// Reproduces the paper's §3.2 capacity claims:
//   "one broker can support more than a thousand audio clients or more
//    than 400 video clients at one time providing a very good quality"
//
// Sweeps receiver counts for a single broker carrying one 64 Kbps G.711
// audio stream or one 600 Kbps video stream and reports delay/loss with
// the paper's quality criterion (avg delay < 100 ms, loss < 2%).
// Alongside the table it writes BENCH_broker_capacity.json so the bench
// trajectory is machine-readable.
//
// --workers N runs the simulation on N EventLoop workers (default 1).
// Simulated metrics — table values and the JSON file — are byte-identical
// for any N (DESIGN.md §9); only the wall column may change.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>
#include <vector>

#include "core/experiments.hpp"

namespace {

struct JsonPoint {
  std::string sweep;
  gmmcs::core::CapacityPoint p;
};

std::vector<JsonPoint> g_points;
int g_workers = 1;

double wall_seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

void sweep(gmmcs::core::MediaKind kind, const char* title, const char* key,
           const std::vector<int>& counts, int paper_claim) {
  using namespace gmmcs::core;
  std::printf("\n=== %s (paper claim: good quality beyond %d clients) ===\n", title, paper_claim);
  std::printf("%10s %14s %16s %10s %12s %10s %10s\n", "clients", "avg delay", "per-client max",
              "loss", "offered", "quality", "wall");
  int last_good = 0;
  for (int n : counts) {
    CapacityConfig cfg;
    cfg.kind = kind;
    cfg.clients = n;
    cfg.workers = g_workers;
    auto t0 = std::chrono::steady_clock::now();
    CapacityPoint p = run_capacity(cfg);
    double wall_s = wall_seconds_since(t0);
    std::printf("%10d %11.2f ms %13.2f ms %9.3f%% %9.1f Mbps %10s %8.2f s\n", p.clients,
                p.avg_delay_ms, p.p99_delay_ms, p.loss_ratio * 100.0, p.offered_mbps,
                p.good_quality ? "good" : "DEGRADED", wall_s);
    if (p.good_quality) last_good = n;
    g_points.push_back({key, p});
  }
  std::printf("  -> largest good-quality client count in sweep: %d (paper: >%d)\n", last_good,
              paper_claim);
}

void write_json() {
  FILE* json = std::fopen("BENCH_broker_capacity.json", "w");
  if (json == nullptr) return;
  std::fprintf(json, "{\n  \"bench\": \"broker_capacity\",\n  \"points\": [\n");
  for (std::size_t i = 0; i < g_points.size(); ++i) {
    const auto& [sweep_key, p] = g_points[i];
    std::fprintf(json,
                 "    {\"sweep\": \"%s\", \"clients\": %d, \"avg_delay_ms\": %.3f, "
                 "\"p99_delay_ms\": %.3f, \"loss_ratio\": %.5f, \"offered_mbps\": %.2f, "
                 "\"good_quality\": %s}%s\n",
                 sweep_key.c_str(), p.clients, p.avg_delay_ms, p.p99_delay_ms, p.loss_ratio,
                 p.offered_mbps, p.good_quality ? "true" : "false",
                 i + 1 < g_points.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::printf("\nwrote BENCH_broker_capacity.json\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gmmcs::core;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--workers" && i + 1 < argc) {
      g_workers = std::atoi(argv[++i]);
    }
  }
  std::printf("=== Broker capacity (claims C1/C2, DESIGN.md section 4) ===\n");
  std::printf("Quality criterion: avg delay < 150 ms and loss < 2%%.\n");
  std::printf("EventLoop workers: %d (simulated metrics are worker-count invariant).\n",
              g_workers);
  sweep(MediaKind::kAudio, "C1: audio clients per broker (64 Kbps G.711)", "audio",
        {200, 400, 600, 800, 1000, 1200, 1400, 1600, 1800}, 1000);
  sweep(MediaKind::kVideo, "C2: video clients per broker (600 Kbps)", "video",
        {100, 200, 300, 400, 420, 440, 470, 500, 600}, 400);
  write_json();
  return 0;
}
