// Reproduces the paper's §3.2 capacity claims:
//   "one broker can support more than a thousand audio clients or more
//    than 400 video clients at one time providing a very good quality"
//
// Sweeps receiver counts for a single broker carrying one 64 Kbps G.711
// audio stream or one 600 Kbps video stream and reports delay/loss with
// the paper's quality criterion (avg delay < 100 ms, loss < 2%).
#include <cstdio>
#include <vector>

#include "core/experiments.hpp"

namespace {

void sweep(gmmcs::core::MediaKind kind, const char* title, const std::vector<int>& counts,
           int paper_claim) {
  using namespace gmmcs::core;
  std::printf("\n=== %s (paper claim: good quality beyond %d clients) ===\n", title, paper_claim);
  std::printf("%10s %14s %16s %10s %12s %10s\n", "clients", "avg delay", "per-client max",
              "loss", "offered", "quality");
  int last_good = 0;
  for (int n : counts) {
    CapacityConfig cfg;
    cfg.kind = kind;
    cfg.clients = n;
    CapacityPoint p = run_capacity(cfg);
    std::printf("%10d %11.2f ms %13.2f ms %9.3f%% %9.1f Mbps %10s\n", p.clients, p.avg_delay_ms,
                p.p99_delay_ms, p.loss_ratio * 100.0, p.offered_mbps,
                p.good_quality ? "good" : "DEGRADED");
    if (p.good_quality) last_good = n;
  }
  std::printf("  -> largest good-quality client count in sweep: %d (paper: >%d)\n", last_good,
              paper_claim);
}

}  // namespace

int main() {
  using namespace gmmcs::core;
  std::printf("=== Broker capacity (claims C1/C2, DESIGN.md section 4) ===\n");
  std::printf("Quality criterion: avg delay < 150 ms and loss < 2%%.\n");
  sweep(MediaKind::kAudio, "C1: audio clients per broker (64 Kbps G.711)",
        {200, 400, 600, 800, 1000, 1200, 1400, 1600, 1800}, 1000);
  sweep(MediaKind::kVideo, "C2: video clients per broker (600 Kbps)",
        {100, 200, 300, 400, 420, 440, 470, 500, 600}, 400);
  return 0;
}
