// Extension bench A3 (DESIGN.md §4): signaling translation overhead.
//
// Measures time-to-join an XGSP session for each access technology the
// paper integrates: native XGSP over the broker, SIP through proxy +
// gateway (INVITE/200/ACK + SDP), H.323 through gatekeeper + gateway
// (ARQ/ACF, Setup/Connect, TCS, OLC), and a community invitation through
// the SOAP web server driving Admire's WSDL-CI service. Also reports
// sustained signaling throughput of the session server.
#include <cstdio>

#include "core/global_mmcs.hpp"
#include "h323/terminal.hpp"
#include "sip/endpoint.hpp"
#include "xgsp/client.hpp"

using namespace gmmcs;

int main() {
  std::printf("=== Extension A3: gateway signaling latency ===\n\n");
  sim::EventLoop loop;
  core::GlobalMmcs mmcs(loop);
  std::string sid = mmcs.create_session("signaling-bench", "gcf", {{"video", "H261"}});
  std::printf("%-34s %14s %28s\n", "access path", "join latency", "signaling legs");

  // Native XGSP client.
  {
    xgsp::XgspClient client(mmcs.add_client_host("native"), mmcs.broker_endpoint(), "native");
    loop.run();
    SimTime t0 = loop.now();
    SimTime t1 = t0;
    client.join(sid, [&](const xgsp::Message&) { t1 = loop.now(); });
    loop.run();
    std::printf("%-34s %11.2f ms %28s\n", "native XGSP (broker topics)", (t1 - t0).to_ms(),
                "join + ack over broker");
  }

  // SIP endpoint.
  {
    sim::Host& h = mmcs.add_client_host("sip");
    sip::SipEndpoint ep(h, "sip:bench@iu.edu", mmcs.sip_proxy().endpoint());
    ep.register_with_proxy([](bool) {});
    loop.run();
    sip::Sdp offer;
    offer.address = h.id();
    offer.media.push_back({"video", 5004, 31, "H261/90000"});
    SimTime t0 = loop.now();
    SimTime t1 = t0;
    ep.invite(sip::SipGateway::conference_uri(sid), offer,
              [&](bool, const sip::SipEndpoint::Call&) { t1 = loop.now(); });
    loop.run();
    std::printf("%-34s %11.2f ms %28s\n", "SIP (proxy + gateway)", (t1 - t0).to_ms(),
                "INVITE/200/ACK + SDP");
  }

  // H.323 terminal.
  {
    sim::Host& h = mmcs.add_client_host("h323");
    h323::H323Terminal term(h, "bench-terminal", mmcs.gatekeeper().ras_endpoint());
    transport::DatagramSocket rtp(h);
    term.register_endpoint([](bool) {});
    loop.run();
    SimTime t0 = loop.now();
    SimTime t1 = t0;
    term.call("conf-" + sid, 6000, {{"video", 31, rtp.local()}},
              [&](bool, const h323::H323Terminal::MediaTargets&) { t1 = loop.now(); });
    loop.run();
    std::printf("%-34s %11.2f ms %28s\n", "H.323 (gatekeeper + gateway)", (t1 - t0).to_ms(),
                "ARQ/ACF,Setup/Connect,TCS,OLC");
  }

  // Admire community via SOAP.
  {
    soap::SoapClient portal(mmcs.add_client_host("portal"), mmcs.web().endpoint());
    xml::Element invite("InviteCommunity");
    invite.set_attr("session", sid);
    invite.set_attr("community", mmcs.admire().name());
    SimTime t0 = loop.now();
    SimTime t1 = t0;
    portal.call(std::move(invite), [&](Result<xml::Element>) { t1 = loop.now(); });
    loop.run();
    std::printf("%-34s %11.2f ms %28s\n", "Admire (SOAP web services)", (t1 - t0).to_ms(),
                "InviteCommunity + WSDL-CI");
  }

  // Sustained signaling throughput: joins/leaves through the session server.
  {
    const xgsp::Message join_template = xgsp::Message::join(sid, "u", xgsp::EndpointKind::kXgsp);
    (void)join_template;
    SimTime t0 = loop.now();
    const int n = 5000;
    for (int i = 0; i < n; ++i) {
      std::string user = "load-" + std::to_string(i);
      mmcs.sessions().handle(xgsp::Message::join(sid, user, xgsp::EndpointKind::kXgsp));
      mmcs.sessions().handle(xgsp::Message::leave(sid, user));
    }
    loop.run();
    double sim_ms = (loop.now() - t0).to_ms();
    std::printf("\nsession server handled %d join+leave pairs (notifications published\n", n);
    std::printf("to the session control topic); simulated time consumed: %.1f ms\n", sim_ms);
  }
  return 0;
}
