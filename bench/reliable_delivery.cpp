// Extension bench A7 (DESIGN.md §4): cost of guaranteed delivery.
//
// Sweeps UDP loss rates and compares a plain best-effort subscriber
// against the NAK-repaired ReliableSubscriber on the same topic: fraction
// of events delivered, recovery traffic (NAKs + retransmissions) and the
// extra delay repaired events pay.
#include <cstdio>

#include "broker/broker_node.hpp"
#include "broker/client.hpp"
#include "broker/reliable.hpp"
#include "common/stats.hpp"
#include "media/stamp.hpp"
#include "sim/event_loop.hpp"
#include "sim/network.hpp"

using namespace gmmcs;

namespace {

struct Row {
  double plain_delivered = 0;
  double reliable_delivered = 0;
  double mean_delay_ms = 0;
  std::uint64_t naks = 0;
  std::uint64_t retransmissions = 0;
};

Row run(double loss) {
  sim::EventLoop loop;
  sim::Network net(loop, 42);
  broker::BrokerNode node(net.add_host("broker"), 0);
  sim::Host& plain_host = net.add_host("plain-sub");
  sim::Host& rel_host = net.add_host("reliable-sub");
  net.set_path(node.host().id(), plain_host.id(),
               sim::PathConfig{.latency = duration_us(300), .loss = loss});
  net.set_path(node.host().id(), rel_host.id(),
               sim::PathConfig{.latency = duration_us(300), .loss = loss});
  broker::RecoveryService recovery(net.add_host("recovery"), node.stream_endpoint(), "/t");

  broker::BrokerClient plain(plain_host, node.stream_endpoint());
  plain.subscribe("/t");
  std::uint64_t plain_got = 0;
  plain.on_event([&](const broker::Event&) { ++plain_got; });

  broker::ReliableSubscriber reliable(rel_host, node.stream_endpoint(), "/t",
                                      recovery.endpoint());
  std::uint64_t rel_got = 0;
  RunningStats delay;
  reliable.on_event([&](const broker::Event& ev) {
    ++rel_got;
    delay.add((loop.now() - ev.origin).to_ms());
  });

  broker::BrokerClient pub(net.add_host("pub"), node.stream_endpoint());
  loop.run();
  const int n = 400;
  for (int i = 0; i < n; ++i) {
    pub.publish("/t", Bytes(512, 0));
    loop.run_for(duration_ms(10));
  }
  loop.run_for(duration_s(1));
  Row row;
  row.plain_delivered = static_cast<double>(plain_got) / n;
  row.reliable_delivered = static_cast<double>(rel_got) / n;
  row.mean_delay_ms = delay.mean();
  row.naks = recovery.naks_served();
  row.retransmissions = recovery.retransmissions();
  return row;
}

}  // namespace

int main() {
  std::printf("=== Extension A7: guaranteed delivery under UDP loss ===\n");
  std::printf("400 events at 100/s, plain UDP subscriber vs NAK-repaired subscriber.\n\n");
  std::printf("%8s %16s %18s %14s %8s %9s\n", "loss", "plain delivered", "reliable delivered",
              "mean delay", "NAKs", "retrans");
  for (double loss : {0.0, 0.05, 0.1, 0.2, 0.3, 0.5}) {
    Row r = run(loss);
    std::printf("%7.0f%% %15.1f%% %17.1f%% %11.2f ms %8llu %9llu\n", loss * 100,
                r.plain_delivered * 100, r.reliable_delivered * 100, r.mean_delay_ms,
                static_cast<unsigned long long>(r.naks),
                static_cast<unsigned long long>(r.retransmissions));
  }
  std::printf("\nReading: plain delivery degrades linearly with loss; the recovery\n");
  std::printf("service holds delivery at ~100%% (suffix guarantee), paying for it in\n");
  std::printf("repair round-trips that show up as a higher mean delivery delay.\n");
  return 0;
}
