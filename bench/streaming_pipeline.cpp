// Extension bench A4 (DESIGN.md §4): the Real producer / Helix pipeline.
//
// Sweeps concurrent RTSP viewers of a re-encoded session stream and
// reports producer transcode backlog, viewer startup latency and late
// blocks; then sweeps transcoder CPU cost to show the encoder saturation
// point (the real Real Producer was famously CPU-bound).
#include <cstdio>
#include <memory>
#include <vector>

#include "broker/client.hpp"
#include "core/global_mmcs.hpp"
#include "media/generator.hpp"
#include "rtp/session.hpp"
#include "streaming/player.hpp"

using namespace gmmcs;

namespace {

struct RunResult {
  double startup_ms = 0;
  std::uint64_t blocks = 0;
  std::uint64_t late = 0;
  std::uint64_t dropped_frames = 0;
  double encode_wait_ms = 0;
};

RunResult run(int viewers, SimDuration cost_per_kb) {
  sim::EventLoop loop;
  core::GlobalMmcs mmcs(loop);
  std::string sid = mmcs.create_session("stream-bench", "gcf", {{"video", "H261"}});
  std::string topic = mmcs.sessions().find(sid)->stream("video")->topic;

  // Producer with the requested transcode cost.
  streaming::RealProducer::Config pcfg;
  pcfg.topic = topic;
  pcfg.stream_name = "bench-video";
  pcfg.transcode.cost_per_kb = cost_per_kb;
  sim::Host& helix_host = mmcs.network().host(mmcs.helix().rtsp_endpoint().node);
  streaming::RealProducer producer(helix_host, mmcs.broker_endpoint(), mmcs.helix(), pcfg);

  std::vector<std::unique_ptr<streaming::StreamingPlayer>> players;
  for (int i = 0; i < viewers; ++i) {
    players.push_back(std::make_unique<streaming::StreamingPlayer>(
        mmcs.add_client_host("viewer-" + std::to_string(i)), mmcs.helix().rtsp_endpoint()));
    players.back()->play("bench-video", [](bool) {});
  }
  loop.run();

  sim::Host& sh = mmcs.add_client_host("sender");
  rtp::RtpSession tx(sh, {.ssrc = 4, .payload_type = 31});
  broker::BrokerClient pub(sh, mmcs.broker_endpoint(),
                           broker::BrokerClient::Config{.name = "sender"});
  tx.on_send([&](const Payload& wire) { pub.publish(topic, wire); });
  media::VideoSource source(tx, {.codec = media::codecs::h261(), .seed = 21});
  loop.run();
  source.start();
  loop.run_for(duration_s(10));
  source.stop();
  loop.run_for(duration_s(2));

  RunResult out;
  RunningStats startup, late;
  for (auto& p : players) {
    if (p->startup_latency()) startup.add(p->startup_latency()->to_ms());
    late.add(static_cast<double>(p->late_blocks()));
    out.blocks += p->blocks_received();
  }
  out.startup_ms = startup.mean();
  out.late = static_cast<std::uint64_t>(late.sum());
  out.dropped_frames = producer.frames_dropped();
  out.encode_wait_ms = producer.transcoder().mean_encode_wait().to_ms();
  return out;
}

}  // namespace

int main() {
  std::printf("=== Extension A4: Real producer / Helix streaming pipeline ===\n\n");
  std::printf("viewer sweep (10 s of 320 kbps H.261, transcode 300 us/KiB):\n");
  std::printf("%8s %14s %14s %12s %14s\n", "viewers", "startup", "blocks rx", "late", "enc wait");
  for (int viewers : {1, 5, 20, 50, 100}) {
    RunResult r = run(viewers, duration_us(300));
    std::printf("%8d %11.2f ms %14llu %12llu %11.3f ms\n", viewers, r.startup_ms,
                static_cast<unsigned long long>(r.blocks), static_cast<unsigned long long>(r.late),
                r.encode_wait_ms);
  }
  std::printf("\ntranscoder cost sweep (20 viewers):\n");
  std::printf("%14s %14s %14s %14s\n", "cost/KiB", "blocks rx", "frames drop", "enc wait");
  for (auto cost_us : {100, 300, 1000, 3000, 10000, 30000}) {
    RunResult r = run(20, duration_us(cost_us));
    std::printf("%11d us %14llu %14llu %11.3f ms\n", cost_us,
                static_cast<unsigned long long>(r.blocks),
                static_cast<unsigned long long>(r.dropped_frames), r.encode_wait_ms);
  }
  std::printf("\nReading: distribution scales linearly with viewers (copy loop), while\n");
  std::printf("the encoder saturates once per-frame cost approaches the frame interval —\n");
  std::printf("frames drop at the transcoder queue, not in the network.\n");
  return 0;
}
