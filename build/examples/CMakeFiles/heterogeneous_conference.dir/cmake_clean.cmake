file(REMOVE_RECURSE
  "CMakeFiles/heterogeneous_conference.dir/heterogeneous_conference.cpp.o"
  "CMakeFiles/heterogeneous_conference.dir/heterogeneous_conference.cpp.o.d"
  "heterogeneous_conference"
  "heterogeneous_conference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heterogeneous_conference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
