# Empty compiler generated dependencies file for heterogeneous_conference.
# This may be replaced when dependencies are built.
