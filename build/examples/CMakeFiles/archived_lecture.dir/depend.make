# Empty dependencies file for archived_lecture.
# This may be replaced when dependencies are built.
