file(REMOVE_RECURSE
  "CMakeFiles/archived_lecture.dir/archived_lecture.cpp.o"
  "CMakeFiles/archived_lecture.dir/archived_lecture.cpp.o.d"
  "archived_lecture"
  "archived_lecture.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/archived_lecture.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
