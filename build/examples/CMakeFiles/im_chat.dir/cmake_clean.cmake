file(REMOVE_RECURSE
  "CMakeFiles/im_chat.dir/im_chat.cpp.o"
  "CMakeFiles/im_chat.dir/im_chat.cpp.o.d"
  "im_chat"
  "im_chat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/im_chat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
