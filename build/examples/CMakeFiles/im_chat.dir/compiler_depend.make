# Empty compiler generated dependencies file for im_chat.
# This may be replaced when dependencies are built.
