file(REMOVE_RECURSE
  "CMakeFiles/global_lecture.dir/global_lecture.cpp.o"
  "CMakeFiles/global_lecture.dir/global_lecture.cpp.o.d"
  "global_lecture"
  "global_lecture.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/global_lecture.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
