# Empty dependencies file for global_lecture.
# This may be replaced when dependencies are built.
