
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/media/codec.cpp" "src/media/CMakeFiles/gmmcs_media.dir/codec.cpp.o" "gcc" "src/media/CMakeFiles/gmmcs_media.dir/codec.cpp.o.d"
  "/root/repo/src/media/generator.cpp" "src/media/CMakeFiles/gmmcs_media.dir/generator.cpp.o" "gcc" "src/media/CMakeFiles/gmmcs_media.dir/generator.cpp.o.d"
  "/root/repo/src/media/transcoder.cpp" "src/media/CMakeFiles/gmmcs_media.dir/transcoder.cpp.o" "gcc" "src/media/CMakeFiles/gmmcs_media.dir/transcoder.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rtp/CMakeFiles/gmmcs_rtp.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gmmcs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gmmcs_common.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/gmmcs_transport.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
