file(REMOVE_RECURSE
  "libgmmcs_media.a"
)
