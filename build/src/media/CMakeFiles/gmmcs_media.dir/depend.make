# Empty dependencies file for gmmcs_media.
# This may be replaced when dependencies are built.
