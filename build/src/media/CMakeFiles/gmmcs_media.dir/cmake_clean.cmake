file(REMOVE_RECURSE
  "CMakeFiles/gmmcs_media.dir/codec.cpp.o"
  "CMakeFiles/gmmcs_media.dir/codec.cpp.o.d"
  "CMakeFiles/gmmcs_media.dir/generator.cpp.o"
  "CMakeFiles/gmmcs_media.dir/generator.cpp.o.d"
  "CMakeFiles/gmmcs_media.dir/transcoder.cpp.o"
  "CMakeFiles/gmmcs_media.dir/transcoder.cpp.o.d"
  "libgmmcs_media.a"
  "libgmmcs_media.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gmmcs_media.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
