# Empty dependencies file for gmmcs_streaming.
# This may be replaced when dependencies are built.
