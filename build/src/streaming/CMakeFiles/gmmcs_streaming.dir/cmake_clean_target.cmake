file(REMOVE_RECURSE
  "libgmmcs_streaming.a"
)
