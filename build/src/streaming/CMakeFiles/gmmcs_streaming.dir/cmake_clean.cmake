file(REMOVE_RECURSE
  "CMakeFiles/gmmcs_streaming.dir/archive.cpp.o"
  "CMakeFiles/gmmcs_streaming.dir/archive.cpp.o.d"
  "CMakeFiles/gmmcs_streaming.dir/helix_server.cpp.o"
  "CMakeFiles/gmmcs_streaming.dir/helix_server.cpp.o.d"
  "CMakeFiles/gmmcs_streaming.dir/player.cpp.o"
  "CMakeFiles/gmmcs_streaming.dir/player.cpp.o.d"
  "CMakeFiles/gmmcs_streaming.dir/producer.cpp.o"
  "CMakeFiles/gmmcs_streaming.dir/producer.cpp.o.d"
  "CMakeFiles/gmmcs_streaming.dir/rtsp.cpp.o"
  "CMakeFiles/gmmcs_streaming.dir/rtsp.cpp.o.d"
  "libgmmcs_streaming.a"
  "libgmmcs_streaming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gmmcs_streaming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
