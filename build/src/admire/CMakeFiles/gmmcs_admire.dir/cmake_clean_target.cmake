file(REMOVE_RECURSE
  "libgmmcs_admire.a"
)
