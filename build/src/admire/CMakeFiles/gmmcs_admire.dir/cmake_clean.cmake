file(REMOVE_RECURSE
  "CMakeFiles/gmmcs_admire.dir/admire.cpp.o"
  "CMakeFiles/gmmcs_admire.dir/admire.cpp.o.d"
  "libgmmcs_admire.a"
  "libgmmcs_admire.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gmmcs_admire.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
