# Empty compiler generated dependencies file for gmmcs_admire.
# This may be replaced when dependencies are built.
