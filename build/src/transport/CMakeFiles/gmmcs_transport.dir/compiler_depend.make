# Empty compiler generated dependencies file for gmmcs_transport.
# This may be replaced when dependencies are built.
