file(REMOVE_RECURSE
  "CMakeFiles/gmmcs_transport.dir/datagram_socket.cpp.o"
  "CMakeFiles/gmmcs_transport.dir/datagram_socket.cpp.o.d"
  "CMakeFiles/gmmcs_transport.dir/firewall.cpp.o"
  "CMakeFiles/gmmcs_transport.dir/firewall.cpp.o.d"
  "CMakeFiles/gmmcs_transport.dir/stream.cpp.o"
  "CMakeFiles/gmmcs_transport.dir/stream.cpp.o.d"
  "libgmmcs_transport.a"
  "libgmmcs_transport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gmmcs_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
