file(REMOVE_RECURSE
  "libgmmcs_transport.a"
)
