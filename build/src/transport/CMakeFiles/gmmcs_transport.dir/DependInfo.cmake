
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/transport/datagram_socket.cpp" "src/transport/CMakeFiles/gmmcs_transport.dir/datagram_socket.cpp.o" "gcc" "src/transport/CMakeFiles/gmmcs_transport.dir/datagram_socket.cpp.o.d"
  "/root/repo/src/transport/firewall.cpp" "src/transport/CMakeFiles/gmmcs_transport.dir/firewall.cpp.o" "gcc" "src/transport/CMakeFiles/gmmcs_transport.dir/firewall.cpp.o.d"
  "/root/repo/src/transport/stream.cpp" "src/transport/CMakeFiles/gmmcs_transport.dir/stream.cpp.o" "gcc" "src/transport/CMakeFiles/gmmcs_transport.dir/stream.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/gmmcs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gmmcs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
