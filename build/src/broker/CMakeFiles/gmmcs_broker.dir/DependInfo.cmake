
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/broker/broker_network.cpp" "src/broker/CMakeFiles/gmmcs_broker.dir/broker_network.cpp.o" "gcc" "src/broker/CMakeFiles/gmmcs_broker.dir/broker_network.cpp.o.d"
  "/root/repo/src/broker/broker_node.cpp" "src/broker/CMakeFiles/gmmcs_broker.dir/broker_node.cpp.o" "gcc" "src/broker/CMakeFiles/gmmcs_broker.dir/broker_node.cpp.o.d"
  "/root/repo/src/broker/client.cpp" "src/broker/CMakeFiles/gmmcs_broker.dir/client.cpp.o" "gcc" "src/broker/CMakeFiles/gmmcs_broker.dir/client.cpp.o.d"
  "/root/repo/src/broker/event.cpp" "src/broker/CMakeFiles/gmmcs_broker.dir/event.cpp.o" "gcc" "src/broker/CMakeFiles/gmmcs_broker.dir/event.cpp.o.d"
  "/root/repo/src/broker/p2p.cpp" "src/broker/CMakeFiles/gmmcs_broker.dir/p2p.cpp.o" "gcc" "src/broker/CMakeFiles/gmmcs_broker.dir/p2p.cpp.o.d"
  "/root/repo/src/broker/reliable.cpp" "src/broker/CMakeFiles/gmmcs_broker.dir/reliable.cpp.o" "gcc" "src/broker/CMakeFiles/gmmcs_broker.dir/reliable.cpp.o.d"
  "/root/repo/src/broker/rtp_proxy.cpp" "src/broker/CMakeFiles/gmmcs_broker.dir/rtp_proxy.cpp.o" "gcc" "src/broker/CMakeFiles/gmmcs_broker.dir/rtp_proxy.cpp.o.d"
  "/root/repo/src/broker/topic.cpp" "src/broker/CMakeFiles/gmmcs_broker.dir/topic.cpp.o" "gcc" "src/broker/CMakeFiles/gmmcs_broker.dir/topic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/transport/CMakeFiles/gmmcs_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gmmcs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gmmcs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
