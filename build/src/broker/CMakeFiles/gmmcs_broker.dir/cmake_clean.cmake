file(REMOVE_RECURSE
  "CMakeFiles/gmmcs_broker.dir/broker_network.cpp.o"
  "CMakeFiles/gmmcs_broker.dir/broker_network.cpp.o.d"
  "CMakeFiles/gmmcs_broker.dir/broker_node.cpp.o"
  "CMakeFiles/gmmcs_broker.dir/broker_node.cpp.o.d"
  "CMakeFiles/gmmcs_broker.dir/client.cpp.o"
  "CMakeFiles/gmmcs_broker.dir/client.cpp.o.d"
  "CMakeFiles/gmmcs_broker.dir/event.cpp.o"
  "CMakeFiles/gmmcs_broker.dir/event.cpp.o.d"
  "CMakeFiles/gmmcs_broker.dir/p2p.cpp.o"
  "CMakeFiles/gmmcs_broker.dir/p2p.cpp.o.d"
  "CMakeFiles/gmmcs_broker.dir/reliable.cpp.o"
  "CMakeFiles/gmmcs_broker.dir/reliable.cpp.o.d"
  "CMakeFiles/gmmcs_broker.dir/rtp_proxy.cpp.o"
  "CMakeFiles/gmmcs_broker.dir/rtp_proxy.cpp.o.d"
  "CMakeFiles/gmmcs_broker.dir/topic.cpp.o"
  "CMakeFiles/gmmcs_broker.dir/topic.cpp.o.d"
  "libgmmcs_broker.a"
  "libgmmcs_broker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gmmcs_broker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
