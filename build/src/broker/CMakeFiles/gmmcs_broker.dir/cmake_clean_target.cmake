file(REMOVE_RECURSE
  "libgmmcs_broker.a"
)
