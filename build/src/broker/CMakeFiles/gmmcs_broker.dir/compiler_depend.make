# Empty compiler generated dependencies file for gmmcs_broker.
# This may be replaced when dependencies are built.
