# Empty dependencies file for gmmcs_sim.
# This may be replaced when dependencies are built.
