file(REMOVE_RECURSE
  "libgmmcs_sim.a"
)
