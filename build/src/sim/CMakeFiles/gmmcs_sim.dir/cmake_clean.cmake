file(REMOVE_RECURSE
  "CMakeFiles/gmmcs_sim.dir/event_loop.cpp.o"
  "CMakeFiles/gmmcs_sim.dir/event_loop.cpp.o.d"
  "CMakeFiles/gmmcs_sim.dir/network.cpp.o"
  "CMakeFiles/gmmcs_sim.dir/network.cpp.o.d"
  "CMakeFiles/gmmcs_sim.dir/service_center.cpp.o"
  "CMakeFiles/gmmcs_sim.dir/service_center.cpp.o.d"
  "libgmmcs_sim.a"
  "libgmmcs_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gmmcs_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
