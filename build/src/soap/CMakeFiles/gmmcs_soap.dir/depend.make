# Empty dependencies file for gmmcs_soap.
# This may be replaced when dependencies are built.
