file(REMOVE_RECURSE
  "CMakeFiles/gmmcs_soap.dir/soap.cpp.o"
  "CMakeFiles/gmmcs_soap.dir/soap.cpp.o.d"
  "libgmmcs_soap.a"
  "libgmmcs_soap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gmmcs_soap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
