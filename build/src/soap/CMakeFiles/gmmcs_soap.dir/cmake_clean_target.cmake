file(REMOVE_RECURSE
  "libgmmcs_soap.a"
)
