# Empty dependencies file for gmmcs_common.
# This may be replaced when dependencies are built.
