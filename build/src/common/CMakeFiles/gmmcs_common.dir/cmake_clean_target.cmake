file(REMOVE_RECURSE
  "libgmmcs_common.a"
)
