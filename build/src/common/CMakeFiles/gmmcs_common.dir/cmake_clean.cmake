file(REMOVE_RECURSE
  "CMakeFiles/gmmcs_common.dir/bytes.cpp.o"
  "CMakeFiles/gmmcs_common.dir/bytes.cpp.o.d"
  "CMakeFiles/gmmcs_common.dir/log.cpp.o"
  "CMakeFiles/gmmcs_common.dir/log.cpp.o.d"
  "CMakeFiles/gmmcs_common.dir/random.cpp.o"
  "CMakeFiles/gmmcs_common.dir/random.cpp.o.d"
  "CMakeFiles/gmmcs_common.dir/stats.cpp.o"
  "CMakeFiles/gmmcs_common.dir/stats.cpp.o.d"
  "CMakeFiles/gmmcs_common.dir/strings.cpp.o"
  "CMakeFiles/gmmcs_common.dir/strings.cpp.o.d"
  "libgmmcs_common.a"
  "libgmmcs_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gmmcs_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
