# Empty compiler generated dependencies file for gmmcs_sip.
# This may be replaced when dependencies are built.
