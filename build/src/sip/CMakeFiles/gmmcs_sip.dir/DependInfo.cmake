
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sip/agent.cpp" "src/sip/CMakeFiles/gmmcs_sip.dir/agent.cpp.o" "gcc" "src/sip/CMakeFiles/gmmcs_sip.dir/agent.cpp.o.d"
  "/root/repo/src/sip/endpoint.cpp" "src/sip/CMakeFiles/gmmcs_sip.dir/endpoint.cpp.o" "gcc" "src/sip/CMakeFiles/gmmcs_sip.dir/endpoint.cpp.o.d"
  "/root/repo/src/sip/gateway.cpp" "src/sip/CMakeFiles/gmmcs_sip.dir/gateway.cpp.o" "gcc" "src/sip/CMakeFiles/gmmcs_sip.dir/gateway.cpp.o.d"
  "/root/repo/src/sip/hearme.cpp" "src/sip/CMakeFiles/gmmcs_sip.dir/hearme.cpp.o" "gcc" "src/sip/CMakeFiles/gmmcs_sip.dir/hearme.cpp.o.d"
  "/root/repo/src/sip/im.cpp" "src/sip/CMakeFiles/gmmcs_sip.dir/im.cpp.o" "gcc" "src/sip/CMakeFiles/gmmcs_sip.dir/im.cpp.o.d"
  "/root/repo/src/sip/message.cpp" "src/sip/CMakeFiles/gmmcs_sip.dir/message.cpp.o" "gcc" "src/sip/CMakeFiles/gmmcs_sip.dir/message.cpp.o.d"
  "/root/repo/src/sip/proxy.cpp" "src/sip/CMakeFiles/gmmcs_sip.dir/proxy.cpp.o" "gcc" "src/sip/CMakeFiles/gmmcs_sip.dir/proxy.cpp.o.d"
  "/root/repo/src/sip/sdp.cpp" "src/sip/CMakeFiles/gmmcs_sip.dir/sdp.cpp.o" "gcc" "src/sip/CMakeFiles/gmmcs_sip.dir/sdp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/xgsp/CMakeFiles/gmmcs_xgsp.dir/DependInfo.cmake"
  "/root/repo/build/src/broker/CMakeFiles/gmmcs_broker.dir/DependInfo.cmake"
  "/root/repo/build/src/media/CMakeFiles/gmmcs_media.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/gmmcs_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gmmcs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gmmcs_common.dir/DependInfo.cmake"
  "/root/repo/build/src/soap/CMakeFiles/gmmcs_soap.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/gmmcs_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/rtp/CMakeFiles/gmmcs_rtp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
