file(REMOVE_RECURSE
  "libgmmcs_sip.a"
)
