file(REMOVE_RECURSE
  "CMakeFiles/gmmcs_sip.dir/agent.cpp.o"
  "CMakeFiles/gmmcs_sip.dir/agent.cpp.o.d"
  "CMakeFiles/gmmcs_sip.dir/endpoint.cpp.o"
  "CMakeFiles/gmmcs_sip.dir/endpoint.cpp.o.d"
  "CMakeFiles/gmmcs_sip.dir/gateway.cpp.o"
  "CMakeFiles/gmmcs_sip.dir/gateway.cpp.o.d"
  "CMakeFiles/gmmcs_sip.dir/hearme.cpp.o"
  "CMakeFiles/gmmcs_sip.dir/hearme.cpp.o.d"
  "CMakeFiles/gmmcs_sip.dir/im.cpp.o"
  "CMakeFiles/gmmcs_sip.dir/im.cpp.o.d"
  "CMakeFiles/gmmcs_sip.dir/message.cpp.o"
  "CMakeFiles/gmmcs_sip.dir/message.cpp.o.d"
  "CMakeFiles/gmmcs_sip.dir/proxy.cpp.o"
  "CMakeFiles/gmmcs_sip.dir/proxy.cpp.o.d"
  "CMakeFiles/gmmcs_sip.dir/sdp.cpp.o"
  "CMakeFiles/gmmcs_sip.dir/sdp.cpp.o.d"
  "libgmmcs_sip.a"
  "libgmmcs_sip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gmmcs_sip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
