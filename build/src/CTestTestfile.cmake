# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("xml")
subdirs("sim")
subdirs("transport")
subdirs("rtp")
subdirs("media")
subdirs("broker")
subdirs("soap")
subdirs("xgsp")
subdirs("sip")
subdirs("h323")
subdirs("streaming")
subdirs("admire")
subdirs("baseline")
subdirs("core")
