file(REMOVE_RECURSE
  "CMakeFiles/gmmcs_xml.dir/xml.cpp.o"
  "CMakeFiles/gmmcs_xml.dir/xml.cpp.o.d"
  "libgmmcs_xml.a"
  "libgmmcs_xml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gmmcs_xml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
