# Empty compiler generated dependencies file for gmmcs_xml.
# This may be replaced when dependencies are built.
