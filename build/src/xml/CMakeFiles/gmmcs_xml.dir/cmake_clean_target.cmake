file(REMOVE_RECURSE
  "libgmmcs_xml.a"
)
