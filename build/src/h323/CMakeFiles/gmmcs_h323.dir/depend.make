# Empty dependencies file for gmmcs_h323.
# This may be replaced when dependencies are built.
