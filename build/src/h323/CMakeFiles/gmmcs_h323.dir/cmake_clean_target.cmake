file(REMOVE_RECURSE
  "libgmmcs_h323.a"
)
