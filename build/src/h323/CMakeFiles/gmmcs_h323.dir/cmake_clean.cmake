file(REMOVE_RECURSE
  "CMakeFiles/gmmcs_h323.dir/gatekeeper.cpp.o"
  "CMakeFiles/gmmcs_h323.dir/gatekeeper.cpp.o.d"
  "CMakeFiles/gmmcs_h323.dir/gateway.cpp.o"
  "CMakeFiles/gmmcs_h323.dir/gateway.cpp.o.d"
  "CMakeFiles/gmmcs_h323.dir/messages.cpp.o"
  "CMakeFiles/gmmcs_h323.dir/messages.cpp.o.d"
  "CMakeFiles/gmmcs_h323.dir/terminal.cpp.o"
  "CMakeFiles/gmmcs_h323.dir/terminal.cpp.o.d"
  "libgmmcs_h323.a"
  "libgmmcs_h323.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gmmcs_h323.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
