
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/xgsp/client.cpp" "src/xgsp/CMakeFiles/gmmcs_xgsp.dir/client.cpp.o" "gcc" "src/xgsp/CMakeFiles/gmmcs_xgsp.dir/client.cpp.o.d"
  "/root/repo/src/xgsp/directory.cpp" "src/xgsp/CMakeFiles/gmmcs_xgsp.dir/directory.cpp.o" "gcc" "src/xgsp/CMakeFiles/gmmcs_xgsp.dir/directory.cpp.o.d"
  "/root/repo/src/xgsp/messages.cpp" "src/xgsp/CMakeFiles/gmmcs_xgsp.dir/messages.cpp.o" "gcc" "src/xgsp/CMakeFiles/gmmcs_xgsp.dir/messages.cpp.o.d"
  "/root/repo/src/xgsp/quality.cpp" "src/xgsp/CMakeFiles/gmmcs_xgsp.dir/quality.cpp.o" "gcc" "src/xgsp/CMakeFiles/gmmcs_xgsp.dir/quality.cpp.o.d"
  "/root/repo/src/xgsp/scheduler.cpp" "src/xgsp/CMakeFiles/gmmcs_xgsp.dir/scheduler.cpp.o" "gcc" "src/xgsp/CMakeFiles/gmmcs_xgsp.dir/scheduler.cpp.o.d"
  "/root/repo/src/xgsp/session.cpp" "src/xgsp/CMakeFiles/gmmcs_xgsp.dir/session.cpp.o" "gcc" "src/xgsp/CMakeFiles/gmmcs_xgsp.dir/session.cpp.o.d"
  "/root/repo/src/xgsp/session_server.cpp" "src/xgsp/CMakeFiles/gmmcs_xgsp.dir/session_server.cpp.o" "gcc" "src/xgsp/CMakeFiles/gmmcs_xgsp.dir/session_server.cpp.o.d"
  "/root/repo/src/xgsp/shared_app.cpp" "src/xgsp/CMakeFiles/gmmcs_xgsp.dir/shared_app.cpp.o" "gcc" "src/xgsp/CMakeFiles/gmmcs_xgsp.dir/shared_app.cpp.o.d"
  "/root/repo/src/xgsp/web_server.cpp" "src/xgsp/CMakeFiles/gmmcs_xgsp.dir/web_server.cpp.o" "gcc" "src/xgsp/CMakeFiles/gmmcs_xgsp.dir/web_server.cpp.o.d"
  "/root/repo/src/xgsp/wsdl_ci.cpp" "src/xgsp/CMakeFiles/gmmcs_xgsp.dir/wsdl_ci.cpp.o" "gcc" "src/xgsp/CMakeFiles/gmmcs_xgsp.dir/wsdl_ci.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/broker/CMakeFiles/gmmcs_broker.dir/DependInfo.cmake"
  "/root/repo/build/src/soap/CMakeFiles/gmmcs_soap.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/gmmcs_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gmmcs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gmmcs_common.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/gmmcs_transport.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
