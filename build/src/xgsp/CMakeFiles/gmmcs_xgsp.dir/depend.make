# Empty dependencies file for gmmcs_xgsp.
# This may be replaced when dependencies are built.
