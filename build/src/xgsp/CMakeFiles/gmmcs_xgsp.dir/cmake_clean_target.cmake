file(REMOVE_RECURSE
  "libgmmcs_xgsp.a"
)
