file(REMOVE_RECURSE
  "CMakeFiles/gmmcs_xgsp.dir/client.cpp.o"
  "CMakeFiles/gmmcs_xgsp.dir/client.cpp.o.d"
  "CMakeFiles/gmmcs_xgsp.dir/directory.cpp.o"
  "CMakeFiles/gmmcs_xgsp.dir/directory.cpp.o.d"
  "CMakeFiles/gmmcs_xgsp.dir/messages.cpp.o"
  "CMakeFiles/gmmcs_xgsp.dir/messages.cpp.o.d"
  "CMakeFiles/gmmcs_xgsp.dir/quality.cpp.o"
  "CMakeFiles/gmmcs_xgsp.dir/quality.cpp.o.d"
  "CMakeFiles/gmmcs_xgsp.dir/scheduler.cpp.o"
  "CMakeFiles/gmmcs_xgsp.dir/scheduler.cpp.o.d"
  "CMakeFiles/gmmcs_xgsp.dir/session.cpp.o"
  "CMakeFiles/gmmcs_xgsp.dir/session.cpp.o.d"
  "CMakeFiles/gmmcs_xgsp.dir/session_server.cpp.o"
  "CMakeFiles/gmmcs_xgsp.dir/session_server.cpp.o.d"
  "CMakeFiles/gmmcs_xgsp.dir/shared_app.cpp.o"
  "CMakeFiles/gmmcs_xgsp.dir/shared_app.cpp.o.d"
  "CMakeFiles/gmmcs_xgsp.dir/web_server.cpp.o"
  "CMakeFiles/gmmcs_xgsp.dir/web_server.cpp.o.d"
  "CMakeFiles/gmmcs_xgsp.dir/wsdl_ci.cpp.o"
  "CMakeFiles/gmmcs_xgsp.dir/wsdl_ci.cpp.o.d"
  "libgmmcs_xgsp.a"
  "libgmmcs_xgsp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gmmcs_xgsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
