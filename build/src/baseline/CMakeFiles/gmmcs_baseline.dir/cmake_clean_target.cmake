file(REMOVE_RECURSE
  "libgmmcs_baseline.a"
)
