file(REMOVE_RECURSE
  "CMakeFiles/gmmcs_baseline.dir/jmf_reflector.cpp.o"
  "CMakeFiles/gmmcs_baseline.dir/jmf_reflector.cpp.o.d"
  "libgmmcs_baseline.a"
  "libgmmcs_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gmmcs_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
