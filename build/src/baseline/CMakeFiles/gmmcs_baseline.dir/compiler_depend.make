# Empty compiler generated dependencies file for gmmcs_baseline.
# This may be replaced when dependencies are built.
