# Empty compiler generated dependencies file for gmmcs_core.
# This may be replaced when dependencies are built.
