file(REMOVE_RECURSE
  "libgmmcs_core.a"
)
