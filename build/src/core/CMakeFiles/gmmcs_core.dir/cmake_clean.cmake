file(REMOVE_RECURSE
  "CMakeFiles/gmmcs_core.dir/accessgrid.cpp.o"
  "CMakeFiles/gmmcs_core.dir/accessgrid.cpp.o.d"
  "CMakeFiles/gmmcs_core.dir/experiments.cpp.o"
  "CMakeFiles/gmmcs_core.dir/experiments.cpp.o.d"
  "CMakeFiles/gmmcs_core.dir/global_mmcs.cpp.o"
  "CMakeFiles/gmmcs_core.dir/global_mmcs.cpp.o.d"
  "libgmmcs_core.a"
  "libgmmcs_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gmmcs_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
