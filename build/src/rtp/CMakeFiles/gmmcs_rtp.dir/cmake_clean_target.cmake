file(REMOVE_RECURSE
  "libgmmcs_rtp.a"
)
