file(REMOVE_RECURSE
  "CMakeFiles/gmmcs_rtp.dir/packet.cpp.o"
  "CMakeFiles/gmmcs_rtp.dir/packet.cpp.o.d"
  "CMakeFiles/gmmcs_rtp.dir/playout.cpp.o"
  "CMakeFiles/gmmcs_rtp.dir/playout.cpp.o.d"
  "CMakeFiles/gmmcs_rtp.dir/receiver_stats.cpp.o"
  "CMakeFiles/gmmcs_rtp.dir/receiver_stats.cpp.o.d"
  "CMakeFiles/gmmcs_rtp.dir/rtcp.cpp.o"
  "CMakeFiles/gmmcs_rtp.dir/rtcp.cpp.o.d"
  "CMakeFiles/gmmcs_rtp.dir/session.cpp.o"
  "CMakeFiles/gmmcs_rtp.dir/session.cpp.o.d"
  "libgmmcs_rtp.a"
  "libgmmcs_rtp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gmmcs_rtp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
