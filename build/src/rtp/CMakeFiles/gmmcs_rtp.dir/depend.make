# Empty dependencies file for gmmcs_rtp.
# This may be replaced when dependencies are built.
