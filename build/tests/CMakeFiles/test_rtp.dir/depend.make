# Empty dependencies file for test_rtp.
# This may be replaced when dependencies are built.
