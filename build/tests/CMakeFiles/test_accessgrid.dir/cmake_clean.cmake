file(REMOVE_RECURSE
  "CMakeFiles/test_accessgrid.dir/accessgrid_test.cpp.o"
  "CMakeFiles/test_accessgrid.dir/accessgrid_test.cpp.o.d"
  "test_accessgrid"
  "test_accessgrid.pdb"
  "test_accessgrid[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_accessgrid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
