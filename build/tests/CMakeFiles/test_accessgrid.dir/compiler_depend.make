# Empty compiler generated dependencies file for test_accessgrid.
# This may be replaced when dependencies are built.
