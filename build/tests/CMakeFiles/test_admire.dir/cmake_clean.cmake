file(REMOVE_RECURSE
  "CMakeFiles/test_admire.dir/admire_test.cpp.o"
  "CMakeFiles/test_admire.dir/admire_test.cpp.o.d"
  "test_admire"
  "test_admire.pdb"
  "test_admire[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_admire.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
