# Empty dependencies file for test_admire.
# This may be replaced when dependencies are built.
