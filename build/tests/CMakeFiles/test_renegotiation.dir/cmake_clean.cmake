file(REMOVE_RECURSE
  "CMakeFiles/test_renegotiation.dir/renegotiation_test.cpp.o"
  "CMakeFiles/test_renegotiation.dir/renegotiation_test.cpp.o.d"
  "test_renegotiation"
  "test_renegotiation.pdb"
  "test_renegotiation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_renegotiation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
