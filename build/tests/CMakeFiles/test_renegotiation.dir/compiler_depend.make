# Empty compiler generated dependencies file for test_renegotiation.
# This may be replaced when dependencies are built.
