# Empty dependencies file for test_h323.
# This may be replaced when dependencies are built.
