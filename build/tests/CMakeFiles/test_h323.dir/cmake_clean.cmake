file(REMOVE_RECURSE
  "CMakeFiles/test_h323.dir/h323_test.cpp.o"
  "CMakeFiles/test_h323.dir/h323_test.cpp.o.d"
  "test_h323"
  "test_h323.pdb"
  "test_h323[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_h323.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
