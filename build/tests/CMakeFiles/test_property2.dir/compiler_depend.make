# Empty compiler generated dependencies file for test_property2.
# This may be replaced when dependencies are built.
