file(REMOVE_RECURSE
  "CMakeFiles/test_playout.dir/playout_test.cpp.o"
  "CMakeFiles/test_playout.dir/playout_test.cpp.o.d"
  "test_playout"
  "test_playout.pdb"
  "test_playout[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_playout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
