# Empty dependencies file for test_playout.
# This may be replaced when dependencies are built.
