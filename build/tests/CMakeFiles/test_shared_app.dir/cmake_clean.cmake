file(REMOVE_RECURSE
  "CMakeFiles/test_shared_app.dir/shared_app_test.cpp.o"
  "CMakeFiles/test_shared_app.dir/shared_app_test.cpp.o.d"
  "test_shared_app"
  "test_shared_app.pdb"
  "test_shared_app[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_shared_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
