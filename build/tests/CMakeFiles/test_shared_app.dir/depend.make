# Empty dependencies file for test_shared_app.
# This may be replaced when dependencies are built.
