# Empty dependencies file for test_hearme.
# This may be replaced when dependencies are built.
