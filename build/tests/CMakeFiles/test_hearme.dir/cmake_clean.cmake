file(REMOVE_RECURSE
  "CMakeFiles/test_hearme.dir/hearme_test.cpp.o"
  "CMakeFiles/test_hearme.dir/hearme_test.cpp.o.d"
  "test_hearme"
  "test_hearme.pdb"
  "test_hearme[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hearme.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
