
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sip_test.cpp" "tests/CMakeFiles/test_sip.dir/sip_test.cpp.o" "gcc" "tests/CMakeFiles/test_sip.dir/sip_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gmmcs_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sip/CMakeFiles/gmmcs_sip.dir/DependInfo.cmake"
  "/root/repo/build/src/rtp/CMakeFiles/gmmcs_rtp.dir/DependInfo.cmake"
  "/root/repo/build/src/xgsp/CMakeFiles/gmmcs_xgsp.dir/DependInfo.cmake"
  "/root/repo/build/src/soap/CMakeFiles/gmmcs_soap.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/gmmcs_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/broker/CMakeFiles/gmmcs_broker.dir/DependInfo.cmake"
  "/root/repo/build/src/media/CMakeFiles/gmmcs_media.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/gmmcs_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gmmcs_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
