# Empty dependencies file for test_sip.
# This may be replaced when dependencies are built.
