file(REMOVE_RECURSE
  "CMakeFiles/test_sip.dir/sip_test.cpp.o"
  "CMakeFiles/test_sip.dir/sip_test.cpp.o.d"
  "test_sip"
  "test_sip.pdb"
  "test_sip[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
