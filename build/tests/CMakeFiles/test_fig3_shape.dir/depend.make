# Empty dependencies file for test_fig3_shape.
# This may be replaced when dependencies are built.
