file(REMOVE_RECURSE
  "CMakeFiles/test_fig3_shape.dir/fig3_shape_test.cpp.o"
  "CMakeFiles/test_fig3_shape.dir/fig3_shape_test.cpp.o.d"
  "test_fig3_shape"
  "test_fig3_shape.pdb"
  "test_fig3_shape[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fig3_shape.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
