# Empty compiler generated dependencies file for test_xgsp.
# This may be replaced when dependencies are built.
