file(REMOVE_RECURSE
  "CMakeFiles/test_xgsp.dir/xgsp_test.cpp.o"
  "CMakeFiles/test_xgsp.dir/xgsp_test.cpp.o.d"
  "test_xgsp"
  "test_xgsp.pdb"
  "test_xgsp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_xgsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
