# Empty dependencies file for gateway_signaling.
# This may be replaced when dependencies are built.
