file(REMOVE_RECURSE
  "CMakeFiles/gateway_signaling.dir/bench/gateway_signaling.cpp.o"
  "CMakeFiles/gateway_signaling.dir/bench/gateway_signaling.cpp.o.d"
  "bench/gateway_signaling"
  "bench/gateway_signaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gateway_signaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
