file(REMOVE_RECURSE
  "CMakeFiles/p2p_tradeoff.dir/bench/p2p_tradeoff.cpp.o"
  "CMakeFiles/p2p_tradeoff.dir/bench/p2p_tradeoff.cpp.o.d"
  "bench/p2p_tradeoff"
  "bench/p2p_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2p_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
