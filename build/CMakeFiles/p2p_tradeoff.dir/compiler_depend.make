# Empty compiler generated dependencies file for p2p_tradeoff.
# This may be replaced when dependencies are built.
