file(REMOVE_RECURSE
  "CMakeFiles/micro_codecs.dir/bench/micro_codecs.cpp.o"
  "CMakeFiles/micro_codecs.dir/bench/micro_codecs.cpp.o.d"
  "bench/micro_codecs"
  "bench/micro_codecs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_codecs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
