# Empty dependencies file for reliable_delivery.
# This may be replaced when dependencies are built.
