file(REMOVE_RECURSE
  "CMakeFiles/reliable_delivery.dir/bench/reliable_delivery.cpp.o"
  "CMakeFiles/reliable_delivery.dir/bench/reliable_delivery.cpp.o.d"
  "bench/reliable_delivery"
  "bench/reliable_delivery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reliable_delivery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
