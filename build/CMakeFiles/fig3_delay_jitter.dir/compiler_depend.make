# Empty compiler generated dependencies file for fig3_delay_jitter.
# This may be replaced when dependencies are built.
