file(REMOVE_RECURSE
  "CMakeFiles/fig3_delay_jitter.dir/bench/fig3_delay_jitter.cpp.o"
  "CMakeFiles/fig3_delay_jitter.dir/bench/fig3_delay_jitter.cpp.o.d"
  "bench/fig3_delay_jitter"
  "bench/fig3_delay_jitter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_delay_jitter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
