# Empty dependencies file for broker_capacity.
# This may be replaced when dependencies are built.
