file(REMOVE_RECURSE
  "CMakeFiles/broker_capacity.dir/bench/broker_capacity.cpp.o"
  "CMakeFiles/broker_capacity.dir/bench/broker_capacity.cpp.o.d"
  "bench/broker_capacity"
  "bench/broker_capacity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/broker_capacity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
