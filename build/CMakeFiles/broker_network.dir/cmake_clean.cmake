file(REMOVE_RECURSE
  "CMakeFiles/broker_network.dir/bench/broker_network.cpp.o"
  "CMakeFiles/broker_network.dir/bench/broker_network.cpp.o.d"
  "bench/broker_network"
  "bench/broker_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/broker_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
