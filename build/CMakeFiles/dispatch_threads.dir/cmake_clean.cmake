file(REMOVE_RECURSE
  "CMakeFiles/dispatch_threads.dir/bench/dispatch_threads.cpp.o"
  "CMakeFiles/dispatch_threads.dir/bench/dispatch_threads.cpp.o.d"
  "bench/dispatch_threads"
  "bench/dispatch_threads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dispatch_threads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
