# Empty compiler generated dependencies file for dispatch_threads.
# This may be replaced when dependencies are built.
