#!/usr/bin/env bash
# Deterministic decoder-fuzzing driver (DESIGN.md §16.4).
#
# Builds tests/decode_fuzz_test.cpp under AddressSanitizer+UBSan and
# drives every decoder family with seeded structure-aware mutations:
# the committed shrunk corpus (tests/fuzz_seeds/) replays first, then
# GMMCS_FUZZ_ITERS fresh mutations per family. The run is time-boxed so
# CI cannot wedge on it; the seed defaults to the current commit SHA so
# every push explores new inputs while any failure stays reproducible —
# a violation prints a shrunk hex reproducer to commit to the corpus.
#
# Usage: tools/fuzz/run_fuzz.sh [--seed N] [--iters N] [--timeout S]
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/../.." && pwd)"
SEED=""
ITERS=500
TIMEOUT_S=600

while [[ $# -gt 0 ]]; do
  case "$1" in
    --seed)    SEED="$2"; shift 2 ;;
    --iters)   ITERS="$2"; shift 2 ;;
    --timeout) TIMEOUT_S="$2"; shift 2 ;;
    *) echo "run_fuzz.sh: unknown argument '$1'" >&2; exit 2 ;;
  esac
done

if [[ -z "$SEED" ]]; then
  # Hex short-SHA as an integer: a fresh deterministic seed per commit.
  SEED="$((16#$(git -C "$ROOT" rev-parse --short=12 HEAD)))"
fi

BUILD="$ROOT/build-sanitize-address-undefined"
cmake -B "$BUILD" -S "$ROOT" -DGMMCS_SANITIZE="address,undefined" >/dev/null
cmake --build "$BUILD" -j "$(nproc)" --target test_decode_fuzz

GMMCS_FUZZ_SEED="$SEED" GMMCS_FUZZ_ITERS="$ITERS" \
  timeout "$TIMEOUT_S" "$BUILD/tests/test_decode_fuzz"
echo "run_fuzz.sh: corpus replay + $ITERS mutations/family clean (seed $SEED)"
