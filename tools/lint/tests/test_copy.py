#!/usr/bin/env python3
"""Unit tests for the gmmcs-lint copy pass (pass 8, DESIGN.md §15).

Copy-discipline dataflow over payload-typed values (Bytes / Payload):
by-value Bytes parameters that are never adopted, copy-construction
from shared lvalues without mutation-before-store, allocating
inspect-only ByteReader reads, and re-framing an already-framed wire
image through ByteWriter::raw. The flagship fixture replays the real
pre-Payload stream delivery copy this tree shipped before the zero-copy
plane landed: `deliver(Bytes(d.payload.begin() + 1, d.payload.end()))`,
one full payload duplication per reliable message, replaced today by
`d.payload.slice(1)` in src/transport/stream.cpp.

Run directly (`python3 tools/lint/tests/test_copy.py`) or via the
`gmmcs_lint_copy_selftest` ctest.
"""

import sys
import unittest
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
sys.path.insert(0, str(Path(__file__).resolve().parent))
import gmmcs_lint  # noqa: E402
from test_gmmcs_lint import LintCase  # noqa: E402


class CopyCase(LintCase):
    def lint(self):
        return gmmcs_lint.pass_copy(self.tree.sources())

    def assert_clean(self):
        self.assertEqual(self.lint(), [])

    def assert_flagged(self, needle):
        findings = self.lint()
        self.assertEqual(self.rules(findings), ["copy"],
                         f"expected one copy finding, got: {findings}")
        self.assertIn(needle, findings[0][3])
        return findings


# ---------------------------------------------------------------------------
# Rule 1: by-value Bytes parameters.
# ---------------------------------------------------------------------------

class TestByValueParams(CopyCase):
    def test_unmoved_byvalue_bytes_param_is_flagged(self):
        self.tree.write("src/broker/relay.hpp", """
struct Relay {
  void send(Bytes payload) { sink_.write(payload); }
  Sink sink_;
};
""")
        self.assert_flagged("by-value Bytes parameter 'payload'")

    def test_moved_byvalue_bytes_param_is_clean(self):
        self.tree.write("src/broker/relay.hpp", """
struct Relay {
  void send(Bytes payload) { sink_.write(std::move(payload)); }
  Sink sink_;
};
""")
        self.assert_clean()

    def test_mutated_byvalue_bytes_param_is_clean(self):
        # Mutation-before-store: the function stamps the buffer, so it
        # genuinely needs its own allocation — by-value is the right API.
        self.tree.write("src/media/stamper.hpp", """
struct Stamper {
  void send(Bytes payload) {
    payload.push_back(0xFF);
    sink_.write(payload);
  }
  Sink sink_;
};
""")
        self.assert_clean()

    def test_const_ref_param_is_clean(self):
        self.tree.write("src/broker/peek.hpp", """
struct Peek {
  bool big(const Bytes& payload) { return payload.size() > 64; }
};
""")
        self.assert_clean()

    def test_rvalue_ref_param_is_clean(self):
        self.tree.write("src/common/adopt.hpp", """
struct Adopter {
  void adopt(Bytes&& own) { buf_ = std::move(own); }
  Bytes buf_;
};
""")
        self.assert_clean()

    def test_byvalue_payload_param_is_clean(self):
        # Payload by value is a refcounted handle, never a byte copy.
        self.tree.write("src/broker/handle.hpp", """
struct Fan {
  void send(Payload frame) { sink_.write(std::move(frame)); }
  Sink sink_;
};
""")
        self.assert_clean()

    def test_fix_rewrites_byvalue_param_to_const_ref(self):
        path = self.tree.write("src/broker/relay.hpp", """
struct Relay {
  void send(Bytes payload) { sink_.write(payload); }
  Sink sink_;
};
""")
        findings = self.lint()
        self.assertEqual(self.rules(findings), ["copy"])
        edits = gmmcs_lint.apply_fixes(self.tree.root, findings)
        self.assertEqual(edits, 1)
        self.assertIn("void send(const Bytes& payload)", path.read_text())
        self.assert_clean()  # idempotent: fixed site no longer fires
        self.assertEqual(gmmcs_lint.apply_fixes(self.tree.root,
                                                self.lint()), 0)


# ---------------------------------------------------------------------------
# Rule 2: copy-construction from a shared origin.
# ---------------------------------------------------------------------------

class TestSharedOriginCopies(CopyCase):
    def test_copy_init_from_payload_param_is_flagged(self):
        self.tree.write("src/broker/dup.hpp", """
struct Dup {
  void keep(const Bytes& incoming) {
    Bytes mine = incoming;
    sink_.write(mine);
  }
  Sink sink_;
};
""")
        self.assert_flagged("copy-constructs payload bytes")

    def test_move_init_is_clean(self):
        self.tree.write("src/broker/dup.hpp", """
struct Dup {
  void keep(Bytes incoming) {
    Bytes mine = std::move(incoming);
    sink_.write(std::move(mine));
  }
  Sink sink_;
};
""")
        self.assert_clean()

    def test_copy_init_from_payload_member_is_flagged(self):
        self.tree.write("src/broker/dup.hpp", """
struct Dup {
  void keep(const Event& ev) {
    Bytes mine = ev.payload;
    sink_.write(mine);
  }
  Sink sink_;
};
""")
        self.assert_flagged("copy-constructs payload bytes")

    def test_init_from_call_result_is_clean(self):
        # Fresh origin: a call result is an rvalue, binding it is a move.
        self.tree.write("src/broker/enc.hpp", """
struct Enc {
  void emit(const Event& ev) {
    Bytes wire = encode(ev);
    sink_.write(std::move(wire));
  }
  Sink sink_;
};
""")
        self.assert_clean()

    def test_copy_then_mutate_is_clean(self):
        # Mutation-before-store justifies the private buffer.
        self.tree.write("src/media/stamp.hpp", """
struct Stamp {
  void emit(const Bytes& incoming) {
    Bytes mine = incoming;
    mine.push_back(0xFF);
    sink_.write(std::move(mine));
  }
  Sink sink_;
};
""")
        self.assert_clean()

    def test_paren_copy_ctor_is_flagged(self):
        self.tree.write("src/broker/dup.hpp", """
struct Dup {
  void keep(const Bytes& incoming) {
    Bytes mine(incoming);
    sink_.write(mine);
  }
  Sink sink_;
};
""")
        self.assert_flagged("copy-constructs payload bytes")

    def test_payload_handle_copy_is_clean(self):
        # Copying a Payload is a refcount bump, not a byte copy.
        self.tree.write("src/broker/handle.hpp", """
struct Keep {
  void keep(const Payload& frame) {
    last_ = frame;
  }
  Payload last_;
};
""")
        self.assert_clean()

    def test_explicit_copy_of_is_clean(self):
        # The counted escape hatch: a deliberate copy is spelled out.
        self.tree.write("src/streaming/snap.hpp", """
struct Snap {
  void keep(const Payload& frame) {
    Bytes mine = frame.copy_of_bytes();
    sink_.write(std::move(mine));
  }
  Sink sink_;
};
""")
        self.assert_clean()

    def test_prefix_stream_delivery_copy_is_replayed(self):
        # The real pre-fix copy from this tree: StreamConnection's kData
        # delivery built a fresh Bytes from the datagram payload minus
        # its type byte — one full payload duplication per reliable
        # message until Payload::slice(1) replaced it.
        self.tree.write("src/transport/stream_old.hpp", """
struct OldStream {
  void handle(const Datagram& d) {
    Bytes payload = d.payload;
    deliver(Bytes(payload.begin() + 1, payload.end()));
  }
  void deliver(Bytes m);
};
""")
        findings = self.lint()
        msgs = " | ".join(f[3] for f in findings)
        self.assertIn("byte-range copy of payload", msgs)
        self.assertIn("Payload::slice()", msgs)


# ---------------------------------------------------------------------------
# Rule 3: allocating inspect-only reads.
# ---------------------------------------------------------------------------

class TestInspectOnlyReads(CopyCase):
    def test_inspect_only_raw_local_is_flagged(self):
        self.tree.write("src/h323/magic.hpp", """
inline bool check(const Payload& data) {
  ByteReader r(data);
  Bytes magic = r.raw(4);
  return magic.size() == 4 && magic[0] == 0x47;
}
""")
        self.assert_flagged("only inspected")

    def test_stored_raw_result_is_clean(self):
        # The decode stores an owned copy into the message — the
        # allocation is load-bearing, not inspect-only.
        self.tree.write("src/h323/store.hpp", """
struct Msg { Bytes body; };
inline Msg parse(const Payload& data) {
  ByteReader r(data);
  Msg m;
  m.body = r.raw(8);
  return m;
}
""")
        self.assert_clean()

    def test_direct_lstr_comparison_is_flagged(self):
        self.tree.write("src/soap/tag.hpp", """
inline bool is_envelope(const Payload& data) {
  ByteReader r(data);
  return r.lstr() == "Envelope";
}
""")
        self.assert_flagged("lstr_view()")

    def test_lstr_stored_into_field_is_clean(self):
        self.tree.write("src/broker/hello.hpp", """
struct Hello { std::string name; };
inline Hello parse(const Payload& data) {
  ByteReader r(data);
  Hello h;
  h.name = r.lstr();
  return h;
}
""")
        self.assert_clean()

    def test_non_reader_receiver_is_ignored(self):
        # ostringstream::str() is not an allocating payload read.
        self.tree.write("src/common/fmt.hpp", """
inline bool rendered(std::ostringstream& out) {
  return out.str() == "done";
}
""")
        self.assert_clean()

    def test_fix_rewrites_inspect_only_raw_to_view(self):
        path = self.tree.write("src/h323/magic.hpp", """
inline bool check(const Payload& data) {
  ByteReader r(data);
  Bytes magic = r.raw(4);
  return magic.size() == 4 && magic[0] == 0x47;
}
""")
        findings = self.lint()
        self.assertEqual(self.rules(findings), ["copy"])
        edits = gmmcs_lint.apply_fixes(self.tree.root, findings)
        self.assertEqual(edits, 1)
        self.assertIn("auto magic = r.view(4);", path.read_text())
        self.assert_clean()

    def test_fix_rewrites_direct_lstr_compare_to_view(self):
        path = self.tree.write("src/soap/tag.hpp", """
inline bool is_envelope(const Payload& data) {
  ByteReader r(data);
  return r.lstr() == "Envelope";
}
""")
        findings = self.lint()
        edits = gmmcs_lint.apply_fixes(self.tree.root, findings)
        self.assertEqual(edits, 1)
        self.assertIn('r.lstr_view() == "Envelope"', path.read_text())
        self.assert_clean()


# ---------------------------------------------------------------------------
# Rule 4: re-framing an already-framed wire image.
# ---------------------------------------------------------------------------

class TestReframing(CopyCase):
    def test_raw_of_wire_is_flagged(self):
        self.tree.write("src/broker/reframe.hpp", """
struct Reframe {
  Bytes wrap(const RoutedEvent& ev) {
    ByteWriter w(ev.wire().size() + 1);
    w.u8(7);
    w.raw(ev.wire());
    return w.take();
  }
};
""")
        self.assert_flagged("re-buffers an already-framed payload")

    def test_raw_of_encode_is_flagged(self):
        self.tree.write("src/broker/reframe.hpp", """
struct Reframe {
  Bytes wrap(const Event& ev) {
    ByteWriter w(64);
    w.raw(encode(ev));
    return w.take();
  }
};
""")
        self.assert_flagged("re-buffers an already-framed payload")

    def test_raw_of_serialize_is_flagged(self):
        self.tree.write("src/rtp/reframe.hpp", """
struct Reframe {
  Bytes wrap(const RtpPacket& p) {
    ByteWriter w(64);
    w.raw(p.serialize());
    return w.take();
  }
};
""")
        self.assert_flagged("re-buffers an already-framed payload")

    def test_raw_of_plain_payload_field_is_clean(self):
        # Writing payload bytes into a frame being BUILT is the codec's
        # job, not a re-framing: the payload is not itself a frame.
        self.tree.write("src/rtp/serialize.hpp", """
struct Ser {
  Bytes serialize(const RtpPacket& p) {
    ByteWriter w(p.payload.size() + 12);
    w.u32(p.ssrc);
    w.raw(p.payload);
    return w.take();
  }
};
""")
        self.assert_clean()


# ---------------------------------------------------------------------------
# Suppressions.
# ---------------------------------------------------------------------------

class TestSuppression(CopyCase):
    def test_allow_copy_with_reason_silences(self):
        self.tree.write("src/broker/dup.hpp", """
struct Dup {
  void keep(const Bytes& incoming) {
    // gmmcs-lint: allow(copy): snapshot must outlive the connection
    Bytes mine = incoming;
    sink_.write(mine);
  }
  Sink sink_;
};
""")
        self.assert_clean()


if __name__ == "__main__":
    unittest.main(verbosity=2)
