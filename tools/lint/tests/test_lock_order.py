#!/usr/bin/env python3
"""Unit tests for the gmmcs-lint lock-order pass.

The in-tree acquisition graph is trivially acyclic (EventLoop::pool_mu_ is
the only blocking mutex and is always taken with nothing held), so these
fixtures are the proof that the analyzer actually detects the bug classes
it claims to: acquisition cycles across TUs, rank inversions against
LOCK_ORDER, guarded-member access without the capability, condvar waits
without the lock, and the annotation plumbing (REQUIRES on declarations,
assert_held coverage, lambdas as separate scopes, lock-order-calls
indirection, suppressions).

Run directly (`python3 tools/lint/tests/test_lock_order.py`) or via the
`gmmcs_lint_lock_order_selftest` ctest.
"""

import sys
import unittest
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
sys.path.insert(0, str(Path(__file__).resolve().parent))
import gmmcs_lint  # noqa: E402
from test_gmmcs_lint import LintCase  # noqa: E402

# A minimal stand-in for src/common/mutex.hpp (its path is in
# LOCK_PRIMITIVE_FILES, so its own members are not capability instances).
PRIMITIVES = """
#pragma once
class GMMCS_CAPABILITY("mutex") Mutex {
 public:
  void lock();
  void unlock();
};
class MutexLock {
 public:
  explicit MutexLock(Mutex& mu);
};
class GMMCS_CAPABILITY("context") ExecContext {
 public:
  void assert_held() const {}
};
class CondVar {
 public:
  void wait(Mutex& mu, int pred) GMMCS_REQUIRES(mu);
};
"""

TWO_MUTEX_HEADER = """
#include "common/mutex.hpp"
class Alpha {
 public:
  void take_both();
  Mutex mu_a_;
};
class Beta {
 public:
  void take_both();
  void lock_only();
  Mutex mu_b_;
};
"""

ORDER_AB = ["Alpha::mu_a_", "Beta::mu_b_"]


class LockOrderCase(LintCase):
    def lint(self, lock_order):
        return gmmcs_lint.pass_lock_order(self.tree.sources(),
                                          lock_order=lock_order)

    def write_primitives(self):
        self.tree.write("src/common/mutex.hpp", PRIMITIVES)


class TestAcquisitionGraph(LockOrderCase):
    def test_two_tu_cycle_is_flagged(self):
        """A->B in one TU and B->A in another is a deadlock: both orders
        must be visible only tree-wide, which is the point of the pass."""
        self.write_primitives()
        self.tree.write("src/sim/pair.hpp", TWO_MUTEX_HEADER)
        self.tree.write("src/sim/alpha.cpp", """
#include "sim/pair.hpp"
void Beta::lock_only() { MutexLock l(mu_b_); }
void Alpha::take_both() {
  MutexLock hold(mu_a_);
  lock_only();
}
""")
        self.tree.write("src/sim/beta.cpp", """
#include "sim/pair.hpp"
void alpha_side(Alpha& a) { MutexLock l(a.mu_a_); }
void Beta::take_both() {
  MutexLock hold(mu_b_);
  alpha_side(other_);
}
""")
        findings = self.lint(ORDER_AB)
        cycle = [f for f in findings if "cycle" in f[3]]
        self.assertTrue(cycle, findings)
        self.assertIn("Alpha::mu_a_", cycle[0][3])
        self.assertIn("Beta::mu_b_", cycle[0][3])

    def test_rank_inversion_is_flagged(self):
        self.write_primitives()
        self.tree.write("src/sim/pair.hpp", TWO_MUTEX_HEADER)
        self.tree.write("src/sim/inv.cpp", """
#include "sim/pair.hpp"
void Beta::take_both() {
  MutexLock hold(mu_b_);
  MutexLock inner(other_a_.mu_a_);
}
""")
        findings = self.lint(ORDER_AB)
        self.assertIn("lock-order", self.rules(findings))
        self.assertTrue(any("runs against the canonical lock order" in f[3]
                            for f in findings), findings)

    def test_in_order_acquisition_is_clean(self):
        self.write_primitives()
        self.tree.write("src/sim/pair.hpp", TWO_MUTEX_HEADER)
        self.tree.write("src/sim/ok.cpp", """
#include "sim/pair.hpp"
void Alpha::take_both() {
  MutexLock hold(mu_a_);
  MutexLock inner(other_b_.mu_b_);
}
""")
        self.assertEqual(self.lint(ORDER_AB), [])

    def test_transitive_acquisition_through_helpers(self):
        """Hold A, call f which calls g which locks B — the may-acquire
        fixpoint must carry B back through two call hops."""
        self.write_primitives()
        self.tree.write("src/sim/pair.hpp", TWO_MUTEX_HEADER)
        self.tree.write("src/sim/deep.cpp", """
#include "sim/pair.hpp"
void leaf(Beta& b) { MutexLock l(b.mu_b_); }
void middle(Beta& b) { leaf(b); }
void Alpha::take_both() {
  MutexLock hold(mu_a_);
  middle(other_);
}
""")
        # B before A in the order: the transitive A->B edge is an inversion.
        findings = self.lint(["Beta::mu_b_", "Alpha::mu_a_"])
        self.assertTrue(any("runs against" in f[3] for f in findings),
                        findings)

    def test_scoped_lock_released_before_next_acquisition_is_clean(self):
        """A MutexLock confined to an inner scope is not held afterwards."""
        self.write_primitives()
        self.tree.write("src/sim/pair.hpp", TWO_MUTEX_HEADER)
        self.tree.write("src/sim/seq.cpp", """
#include "sim/pair.hpp"
void Beta::take_both() {
  {
    MutexLock hold(mu_b_);
  }
  MutexLock after(other_a_.mu_a_);
}
""")
        self.assertEqual(self.lint(ORDER_AB), [])

    def test_lock_order_calls_annotation_records_indirection(self):
        """Callback indirection the call scan can't see is recorded with
        `gmmcs-lint: lock-order-calls(F, G)`."""
        self.write_primitives()
        self.tree.write("src/sim/pair.hpp", TWO_MUTEX_HEADER)
        self.tree.write("src/sim/cb.cpp", """
#include "sim/pair.hpp"
void Beta::lock_only() { MutexLock l(mu_b_); }
// run_callbacks invokes the registered Beta::lock_only through a stored
// callable. gmmcs-lint: lock-order-calls(run_callbacks, Beta::lock_only)
void run_callbacks() { invoke_all(); }
void Beta::take_both() {
  MutexLock hold(mu_b_);
  run_callbacks();
}
""")
        # Self-edge through the annotation: B held while (indirectly)
        # locking B again is reported as a cycle B -> B? No: identical
        # capability edges are dropped. Prove the edge exists by holding A.
        self.tree.write("src/sim/cb2.cpp", """
#include "sim/pair.hpp"
void Alpha::take_both() {
  MutexLock hold(mu_a_);
  run_callbacks();
}
""")
        findings = self.lint(["Beta::mu_b_", "Alpha::mu_a_"])
        self.assertTrue(any("runs against" in f[3]
                            and "Alpha::mu_a_" in f[3] for f in findings),
                        findings)

    def test_stale_lock_order_calls_annotation_is_flagged(self):
        """An annotation operand that no longer names a real function (the
        callback was renamed) must be reported, not silently ignored — a
        stale annotation drops acquisition-graph edges."""
        self.write_primitives()
        self.tree.write("src/sim/pair.hpp", TWO_MUTEX_HEADER)
        self.tree.write("src/sim/cb.cpp", """
#include "sim/pair.hpp"
void Beta::lock_only() { MutexLock l(mu_b_); }
// gmmcs-lint: lock-order-calls(run_callbacks, Beta::lock_gone)
void run_callbacks() { invoke_all(); }
""")
        findings = self.lint(ORDER_AB)
        stale = [f for f in findings if "matches no function" in f[3]]
        self.assertEqual(len(stale), 1, findings)
        self.assertIn("Beta::lock_gone", stale[0][3])
        self.assertEqual(stale[0][1], 4)  # the annotation's own line

    def test_stale_lock_order_calls_caller_side_is_flagged(self):
        self.write_primitives()
        self.tree.write("src/sim/pair.hpp", TWO_MUTEX_HEADER)
        self.tree.write("src/sim/cb.cpp", """
#include "sim/pair.hpp"
void Beta::lock_only() { MutexLock l(mu_b_); }
// gmmcs-lint: lock-order-calls(run_gone, Beta::lock_only)
void run_callbacks() { invoke_all(); }
""")
        findings = self.lint(ORDER_AB)
        self.assertTrue(any("caller 'run_gone'" in f[3] for f in findings),
                        findings)

    def test_resolving_lock_order_calls_annotation_is_clean(self):
        self.write_primitives()
        self.tree.write("src/sim/pair.hpp", TWO_MUTEX_HEADER)
        self.tree.write("src/sim/cb.cpp", """
#include "sim/pair.hpp"
void Beta::lock_only() { MutexLock l(mu_b_); }
// gmmcs-lint: lock-order-calls(run_callbacks, Beta::lock_only)
void run_callbacks() { invoke_all(); }
""")
        self.assertEqual(self.lint(ORDER_AB), [])

    def test_suppression_with_reason_silences(self):
        self.write_primitives()
        self.tree.write("src/sim/pair.hpp", TWO_MUTEX_HEADER)
        self.tree.write("src/sim/inv.cpp", """
#include "sim/pair.hpp"
void Beta::take_both() {
  MutexLock hold(mu_b_);
  // gmmcs-lint: allow(lock-order): startup-only path, single-threaded
  MutexLock inner(other_a_.mu_a_);
}
""")
        self.assertEqual(self.lint(ORDER_AB), [])


class TestConfigCompleteness(LockOrderCase):
    def test_unranked_instance_is_flagged(self):
        self.write_primitives()
        self.tree.write("src/sim/pair.hpp", TWO_MUTEX_HEADER)
        findings = self.lint(["Alpha::mu_a_"])  # Beta::mu_b_ missing
        self.assertTrue(any("not in LOCK_ORDER" in f[3]
                            and "Beta::mu_b_" in f[3] for f in findings),
                        findings)

    def test_stale_order_entry_is_flagged(self):
        self.write_primitives()
        self.tree.write("src/sim/pair.hpp", TWO_MUTEX_HEADER)
        findings = self.lint(ORDER_AB + ["Gone::mu_"])
        self.assertTrue(any("matches no capability instance" in f[3]
                            for f in findings), findings)


GUARDED_HEADER = """
#include "common/mutex.hpp"
class Counter {
 public:
  Counter() { n_ = 0; }
  void bump_unlocked();
  void bump_locked();
  void bump_required() GMMCS_REQUIRES(mu_);
  Mutex mu_;
  int n_ GMMCS_GUARDED_BY(mu_);
};
"""


class TestGuardedBy(LockOrderCase):
    def test_access_without_lock_is_flagged(self):
        self.write_primitives()
        self.tree.write("src/sim/counter.hpp", GUARDED_HEADER)
        self.tree.write("src/sim/counter.cpp", """
#include "sim/counter.hpp"
void Counter::bump_unlocked() { ++n_; }
""")
        findings = self.lint(["Counter::mu_"])
        self.assertIn("guarded-by", self.rules(findings))
        self.assertIn("n_", findings[0][3])

    def test_mutexlock_scope_satisfies_guard(self):
        self.write_primitives()
        self.tree.write("src/sim/counter.hpp", GUARDED_HEADER)
        self.tree.write("src/sim/counter.cpp", """
#include "sim/counter.hpp"
void Counter::bump_locked() {
  MutexLock hold(mu_);
  ++n_;
}
""")
        self.assertEqual(self.lint(["Counter::mu_"]), [])

    def test_requires_on_declaration_satisfies_guard(self):
        """REQUIRES lives on the header declaration; the out-of-line body
        must inherit it."""
        self.write_primitives()
        self.tree.write("src/sim/counter.hpp", GUARDED_HEADER)
        self.tree.write("src/sim/counter.cpp", """
#include "sim/counter.hpp"
void Counter::bump_required() { ++n_; }
""")
        self.assertEqual(self.lint(["Counter::mu_"]), [])

    def test_constructor_is_exempt(self):
        self.write_primitives()
        self.tree.write("src/sim/counter.hpp", GUARDED_HEADER)
        self.assertEqual(self.lint(["Counter::mu_"]), [])

    def test_assert_held_covers_following_code_only(self):
        self.write_primitives()
        self.tree.write("src/sim/ctx.hpp", """
#include "common/mutex.hpp"
class Stage {
 public:
  void early();
  void late();
  ExecContext ctx_;
  int n_ GMMCS_GUARDED_BY(ctx_);
};
""")
        self.tree.write("src/sim/ctx.cpp", """
#include "sim/ctx.hpp"
void Stage::late() {
  ctx_.assert_held();
  ++n_;
}
void Stage::early() {
  ++n_;
  ctx_.assert_held();
}
""")
        findings = self.lint(["Stage::ctx_"])
        self.assertEqual(self.rules(findings), ["guarded-by"])
        self.assertIn("Stage::early", findings[0][3])

    def test_lambda_is_a_separate_scope(self):
        """clang analyzes lambdas separately, so the linter must too: the
        enclosing function's assert does not cover the lambda body."""
        self.write_primitives()
        self.tree.write("src/sim/ctx.hpp", """
#include "common/mutex.hpp"
class Stage {
 public:
  void run();
  void run_annotated();
  ExecContext ctx_;
  int n_ GMMCS_GUARDED_BY(ctx_);
};
""")
        self.tree.write("src/sim/ctx.cpp", """
#include "sim/ctx.hpp"
void Stage::run() {
  ctx_.assert_held();
  auto fn = [this] { ++n_; };
  fn();
}
""")
        findings = self.lint(["Stage::ctx_"])
        self.assertEqual(self.rules(findings), ["guarded-by"])
        self.assertIn("<lambda>", findings[0][3])

    def test_lambda_with_own_assert_is_clean(self):
        self.write_primitives()
        self.tree.write("src/sim/ctx.hpp", """
#include "common/mutex.hpp"
class Stage {
 public:
  void run();
  ExecContext ctx_;
  int n_ GMMCS_GUARDED_BY(ctx_);
};
""")
        self.tree.write("src/sim/ctx.cpp", """
#include "sim/ctx.hpp"
void Stage::run() {
  ctx_.assert_held();
  auto fn = [this] {
    ctx_.assert_held();
    ++n_;
  };
  fn();
}
""")
        self.assertEqual(self.lint(["Stage::ctx_"]), [])


TWO_OWNER_HEADER = """
#include "common/mutex.hpp"
class Widget {
 public:
  void poke();
  Mutex mu_w_;
  int q_ GMMCS_GUARDED_BY(mu_w_);
};
class Gadget {
 public:
  void poke();
  Mutex mu_g_;
  int q_ GMMCS_GUARDED_BY(mu_g_);
};
"""

ORDER_WG = ["Widget::mu_w_", "Gadget::mu_g_"]


class TestTypeAwareReceiver(LockOrderCase):
    """`obj->member` checks used to require the member name to map to a
    single guard tree-wide; the receiver's declared type now picks the
    owner, so same-named members guarded by different mutexes still
    check."""

    def test_parameter_type_resolves_ambiguous_guard(self):
        self.write_primitives()
        self.tree.write("src/sim/two.hpp", TWO_OWNER_HEADER)
        self.tree.write("src/sim/use.cpp", """
#include "sim/two.hpp"
void bump(Widget& w) { ++w.q_; }
""")
        findings = self.lint(ORDER_WG)
        self.assertEqual(self.rules(findings), ["guarded-by"])
        self.assertIn("mu_w_", findings[0][3])

    def test_parameter_type_resolution_with_lock_is_clean(self):
        self.write_primitives()
        self.tree.write("src/sim/two.hpp", TWO_OWNER_HEADER)
        self.tree.write("src/sim/use.cpp", """
#include "sim/two.hpp"
void bump(Widget& w) {
  MutexLock hold(w.mu_w_);
  ++w.q_;
}
""")
        self.assertEqual(self.lint(ORDER_WG), [])

    def test_unguarded_class_with_same_member_name_is_skipped(self):
        """A receiver whose class declares `q_` WITHOUT a guard must not
        inherit another class's guard just because the names collide."""
        self.write_primitives()
        self.tree.write("src/sim/two.hpp", TWO_OWNER_HEADER)
        self.tree.write("src/sim/plain.hpp", """
class Plain {
 public:
  int q_;
};
""")
        self.tree.write("src/sim/use.cpp", """
#include "sim/plain.hpp"
void bump(Plain& p) { ++p.q_; }
""")
        self.assertEqual(self.lint(ORDER_WG), [])

    def test_this_receiver_resolves_to_own_class(self):
        self.write_primitives()
        self.tree.write("src/sim/two.hpp", TWO_OWNER_HEADER)
        self.tree.write("src/sim/use.cpp", """
#include "sim/two.hpp"
void Widget::poke() { ++this->q_; }
""")
        findings = self.lint(ORDER_WG)
        self.assertEqual(self.rules(findings), ["guarded-by"])
        self.assertIn("mu_w_", findings[0][3])

    def test_member_declaration_resolves_receiver(self):
        """Receiver is a data member of the enclosing class: its declared
        type picks the guard owner."""
        self.write_primitives()
        self.tree.write("src/sim/two.hpp", TWO_OWNER_HEADER)
        self.tree.write("src/sim/holder.hpp", """
#include "sim/two.hpp"
class Holder {
 public:
  void poke_inner();
  Gadget inner_;
};
""")
        self.tree.write("src/sim/holder.cpp", """
#include "sim/holder.hpp"
void Holder::poke_inner() { ++inner_.q_; }
""")
        findings = self.lint(ORDER_WG)
        self.assertEqual(self.rules(findings), ["guarded-by"])
        self.assertIn("mu_g_", findings[0][3])

    def test_local_declaration_resolves_receiver(self):
        self.write_primitives()
        self.tree.write("src/sim/two.hpp", TWO_OWNER_HEADER)
        self.tree.write("src/sim/use.cpp", """
#include "sim/two.hpp"
void bump(WidgetRegistry& reg) {
  Widget& w = reg.pick();
  ++w.q_;
}
""")
        findings = self.lint(ORDER_WG)
        self.assertEqual(self.rules(findings), ["guarded-by"])
        self.assertIn("mu_w_", findings[0][3])

    def test_unresolvable_ambiguous_receiver_still_skipped(self):
        """No declaration in sight and two candidate guards: stay silent
        rather than guess (the pre-existing conservative fallback)."""
        self.write_primitives()
        self.tree.write("src/sim/two.hpp", TWO_OWNER_HEADER)
        self.tree.write("src/sim/use.cpp", """
#include "sim/two.hpp"
void bump() { ++mystery()->q_; }
""")
        self.assertEqual(self.lint(ORDER_WG), [])


class TestParametricCaps(LockOrderCase):
    """GMMCS_REQUIRES(mu)/GMMCS_ACQUIRE(mu) where `mu` names a parameter:
    the capability binds to the actual argument at each call site."""

    def test_parametric_acquire_rank_inversion_at_call_site(self):
        self.write_primitives()
        self.tree.write("src/sim/pair.hpp", TWO_MUTEX_HEADER)
        self.tree.write("src/sim/grab.cpp", """
#include "sim/pair.hpp"
void grab(Mutex& mu) GMMCS_ACQUIRE(mu) { mu.lock(); }
void Beta::take_both() {
  MutexLock hold(mu_b_);
  grab(other_a_.mu_a_);
}
""")
        findings = self.lint(ORDER_AB)
        self.assertTrue(any("runs against" in f[3]
                            and "Alpha::mu_a_" in f[3] for f in findings),
                        findings)

    def test_parametric_acquire_in_order_is_clean(self):
        self.write_primitives()
        self.tree.write("src/sim/pair.hpp", TWO_MUTEX_HEADER)
        self.tree.write("src/sim/grab.cpp", """
#include "sim/pair.hpp"
void grab(Mutex& mu) GMMCS_ACQUIRE(mu) { mu.lock(); }
void Alpha::take_both() {
  MutexLock hold(mu_a_);
  grab(other_b_.mu_b_);
}
""")
        self.assertEqual(self.lint(ORDER_AB), [])

    def test_parametric_requires_not_held_is_flagged(self):
        self.write_primitives()
        self.tree.write("src/sim/pair.hpp", TWO_MUTEX_HEADER)
        self.tree.write("src/sim/touch.cpp", """
#include "sim/pair.hpp"
void touch(Mutex& mu) GMMCS_REQUIRES(mu) { poke(); }
void Beta::take_both() {
  touch(mu_b_);
}
""")
        findings = self.lint(ORDER_AB)
        self.assertEqual(self.rules(findings), ["lock-order"])
        self.assertIn("does not hold 'Beta::mu_b_'", findings[0][3])

    def test_parametric_requires_held_is_clean(self):
        self.write_primitives()
        self.tree.write("src/sim/pair.hpp", TWO_MUTEX_HEADER)
        self.tree.write("src/sim/touch.cpp", """
#include "sim/pair.hpp"
void touch(Mutex& mu) GMMCS_REQUIRES(mu) { poke(); }
void Beta::take_both() {
  MutexLock hold(mu_b_);
  touch(mu_b_);
}
""")
        self.assertEqual(self.lint(ORDER_AB), [])

    def test_parametric_requires_declaration_only(self):
        """The annotation on a header prototype (no body in the tree view)
        still substitutes at call sites."""
        self.write_primitives()
        self.tree.write("src/sim/pair.hpp", TWO_MUTEX_HEADER)
        self.tree.write("src/sim/api.hpp", """
#include "common/mutex.hpp"
class Api {
 public:
  void touch(Mutex& mu) GMMCS_REQUIRES(mu);
};
""")
        self.tree.write("src/sim/use.cpp", """
#include "sim/pair.hpp"
#include "sim/api.hpp"
void Beta::take_both() {
  api_.touch(mu_b_);
}
""")
        findings = self.lint(ORDER_AB)
        self.assertEqual(self.rules(findings), ["lock-order"])
        self.assertIn("GMMCS_REQUIRES(mu)", findings[0][3])

    def test_non_capability_argument_is_ignored(self):
        """Substituting an argument that isn't a known capability instance
        must not fabricate findings."""
        self.write_primitives()
        self.tree.write("src/sim/pair.hpp", TWO_MUTEX_HEADER)
        self.tree.write("src/sim/touch.cpp", """
#include "sim/pair.hpp"
void touch(Mutex& mu) GMMCS_REQUIRES(mu) { poke(); }
void Beta::take_both() {
  touch(scratch_mu);
}
""")
        self.assertEqual(self.lint(ORDER_AB), [])

    def test_condvar_wait_is_not_double_reported(self):
        """CondVar::wait is itself GMMCS_REQUIRES(mu)-parametric, but the
        condvar-hold rule owns that diagnostic — an unheld wait must yield
        exactly one finding."""
        self.write_primitives()
        self.tree.write("src/sim/cv.hpp", """
#include "common/mutex.hpp"
class Queue {
 public:
  void pop();
  Mutex mu_;
  CondVar cv_;
};
""")
        self.tree.write("src/sim/cv.cpp", """
#include "sim/cv.hpp"
void Queue::pop() {
  cv_.wait(mu_, 1);
}
""")
        findings = self.lint(["Queue::mu_"])
        self.assertEqual(self.rules(findings), ["condvar-hold"])


class TestCondvarHold(LockOrderCase):
    def test_wait_without_capability_is_flagged(self):
        self.write_primitives()
        self.tree.write("src/sim/cv.hpp", """
#include "common/mutex.hpp"
class Queue {
 public:
  void pop();
  Mutex mu_;
  CondVar cv_;
};
""")
        self.tree.write("src/sim/cv.cpp", """
#include "sim/cv.hpp"
void Queue::pop() {
  cv_.wait(mu_, 1);
}
""")
        findings = self.lint(["Queue::mu_"])
        self.assertEqual(self.rules(findings), ["condvar-hold"])
        self.assertIn("mu_", findings[0][3])

    def test_wait_with_lock_held_is_clean(self):
        self.write_primitives()
        self.tree.write("src/sim/cv.hpp", """
#include "common/mutex.hpp"
class Queue {
 public:
  void pop();
  Mutex mu_;
  CondVar cv_;
};
""")
        self.tree.write("src/sim/cv.cpp", """
#include "sim/cv.hpp"
void Queue::pop() {
  MutexLock hold(mu_);
  cv_.wait(mu_, 1);
}
""")
        self.assertEqual(self.lint(["Queue::mu_"]), [])


if __name__ == "__main__":
    unittest.main()
