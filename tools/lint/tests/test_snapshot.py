#!/usr/bin/env python3
"""Unit tests for the gmmcs-lint snapshot-discipline pass.

The epoch-snapshot control plane (DESIGN.md §12) is only sound while the
published types stay immutable, readers hold const handles, and the atomic
snapshot pointer is stored from writer scopes only. The production tree is
(and must stay) clean, so these fixtures are the proof that the pass
actually detects each violation class: mutable state in a snapshot type,
non-const methods (declared, inline and out-of-line), const_cast escapes,
non-const handles outside writer scopes, mutable handle members, and
publication from reader code — plus the writer-scope carve-outs
(GMMCS_REQUIRES on the definition or its header declaration, a prior
assert_held) and suppressions.

Run directly (`python3 tools/lint/tests/test_snapshot.py`) or via the
`gmmcs_lint_snapshot_selftest` ctest.
"""

import sys
import unittest
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
sys.path.insert(0, str(Path(__file__).resolve().parent))
import gmmcs_lint  # noqa: E402
from test_gmmcs_lint import LintCase  # noqa: E402

# A snapshot type living in src/broker, the shape the rule protects: plain
# data plus const accessors, frozen behind shared_ptr<const Snap>.
CLEAN_SNAP = """
#pragma once
#include <memory>
struct Snap {
  Snap() = default;
  Snap(int e) : epoch(e) {}
  int epoch = 0;
  [[nodiscard]] int lookup(int key) const;
  [[nodiscard]] const int& view() const { return epoch; }
};
using SnapPtr = std::shared_ptr<const Snap>;
"""


class SnapshotCase(LintCase):
    def lint(self, snapshot_types=("Snap",)):
        return gmmcs_lint.pass_snapshot(self.tree.sources(),
                                        snapshot_types=list(snapshot_types))


class TestSnapshotType(SnapshotCase):
    def test_clean_snapshot_type_is_clean(self):
        self.tree.write("src/broker/snap.hpp", CLEAN_SNAP)
        self.tree.write("src/broker/snap.cpp", """
#include "broker/snap.hpp"
int Snap::lookup(int key) const { return epoch + key; }
""")
        self.assertEqual(self.lint(), [])

    def test_mutable_member_is_flagged(self):
        self.tree.write("src/broker/snap.hpp", """
struct Snap {
  mutable int cache = 0;
  int lookup(int key) const;
};
""")
        findings = self.lint()
        self.assertEqual(self.rules(findings), ["snapshot-type"])
        self.assertIn("mutable member", findings[0][3])

    def test_nonconst_method_declaration_is_flagged(self):
        self.tree.write("src/broker/snap.hpp", """
struct Snap {
  int epoch = 0;
  void set_epoch(int e);
  [[nodiscard]] int lookup(int key) const;
};
""")
        findings = self.lint()
        self.assertEqual(self.rules(findings), ["snapshot-type"])
        self.assertIn("set_epoch", findings[0][3])

    def test_nonconst_inline_method_is_flagged(self):
        self.tree.write("src/broker/snap.hpp", """
struct Snap {
  int epoch = 0;
  void bump() { ++epoch; }
};
""")
        findings = self.lint()
        self.assertEqual(self.rules(findings), ["snapshot-type"])
        self.assertIn("bump", findings[0][3])

    def test_nonconst_out_of_line_method_is_flagged(self):
        self.tree.write("src/broker/snap.hpp", """
struct Snap {
  int epoch = 0;
  void bump();
};
""")
        self.tree.write("src/broker/snap.cpp", """
#include "broker/snap.hpp"
void Snap::bump() { ++epoch; }
""")
        findings = self.lint()
        # Both the declaration and the definition are reported.
        self.assertEqual(self.rules(findings),
                         ["snapshot-type", "snapshot-type"])

    def test_constructors_are_exempt(self):
        self.tree.write("src/broker/snap.hpp", """
struct Snap {
  Snap();
  explicit Snap(int e) : epoch(e) {}
  ~Snap();
  int epoch = 0;
};
""")
        self.assertEqual(self.lint(), [])

    def test_other_classes_methods_are_not_snapshot_typed(self):
        # A non-snapshot class with non-const methods mentioning Snap by
        # value stays clean.
        self.tree.write("src/broker/snap.hpp", CLEAN_SNAP)
        self.tree.write("src/broker/use.cpp", """
#include "broker/snap.hpp"
struct Builder {
  void grow() { ++n_; }
  int n_ = 0;
};
Snap copy_of(const Snap& s) { return s; }
""")
        self.assertEqual(self.lint(), [])


class TestSnapshotMutation(SnapshotCase):
    def test_const_cast_is_flagged_even_in_writer_scope(self):
        self.tree.write("src/broker/snap.hpp", CLEAN_SNAP)
        self.tree.write("src/broker/evil.cpp", """
#include "broker/snap.hpp"
void hack(const Snap& s) GMMCS_REQUIRES(ctx_) {
  const_cast<Snap&>(s).epoch = 7;
}
""")
        findings = self.lint()
        self.assertEqual(self.rules(findings), ["snapshot-mutation"])
        self.assertIn("casting constness away", findings[0][3])

    def test_nonconst_shared_ptr_in_reader_is_flagged(self):
        self.tree.write("src/broker/snap.hpp", CLEAN_SNAP)
        self.tree.write("src/broker/reader.cpp", """
#include "broker/snap.hpp"
void peek(std::shared_ptr<Snap> s) {
  s->epoch = 1;
}
""")
        findings = self.lint()
        self.assertTrue(findings)
        self.assertEqual(set(self.rules(findings)), {"snapshot-mutation"})

    def test_nonconst_ref_in_reader_is_flagged(self):
        self.tree.write("src/broker/snap.hpp", CLEAN_SNAP)
        self.tree.write("src/broker/reader.cpp", """
#include "broker/snap.hpp"
void touch(Snap& s) {
  Snap* p = &s;
  p->epoch = 1;
}
""")
        findings = self.lint()
        self.assertTrue(findings)
        self.assertEqual(set(self.rules(findings)), {"snapshot-mutation"})

    def test_const_handles_in_reader_are_clean(self):
        self.tree.write("src/broker/snap.hpp", CLEAN_SNAP)
        self.tree.write("src/broker/reader.cpp", """
#include "broker/snap.hpp"
int peek(const SnapPtr& snap) {
  const Snap& s = *snap;
  const Snap* p = snap.get();
  return s.lookup(p->epoch);
}
""")
        self.assertEqual(self.lint(), [])

    def test_make_shared_under_requires_is_clean(self):
        self.tree.write("src/broker/snap.hpp", CLEAN_SNAP)
        self.tree.write("src/broker/writer.cpp", """
#include "broker/snap.hpp"
void Fabric::publish_now() GMMCS_REQUIRES(ctx_) {
  auto next = std::make_shared<Snap>();
  next->epoch = 2;
}
""")
        self.assertEqual(self.lint(), [])

    def test_requires_on_header_declaration_carries_to_definition(self):
        self.tree.write("src/broker/snap.hpp", CLEAN_SNAP)
        self.tree.write("src/broker/fabric.hpp", """
#include "broker/snap.hpp"
class Fabric {
 public:
  void publish_now() GMMCS_REQUIRES(ctx_);
};
""")
        self.tree.write("src/broker/fabric.cpp", """
#include "broker/fabric.hpp"
void Fabric::publish_now() {
  auto next = std::make_shared<Snap>();
  next->epoch = 2;
}
""")
        self.assertEqual(self.lint(), [])

    def test_assert_held_makes_writer_from_that_point_only(self):
        self.tree.write("src/broker/snap.hpp", CLEAN_SNAP)
        self.tree.write("src/broker/half.cpp", """
#include "broker/snap.hpp"
void Fabric::rebuild() {
  auto early = std::make_shared<Snap>();
  ctx_.assert_held();
  auto late = std::make_shared<Snap>();
}
""")
        findings = self.lint()
        self.assertEqual(self.rules(findings), ["snapshot-mutation"])
        # Only the pre-assert handle is flagged.
        self.assertEqual(len(findings), 1)

    def test_lambda_does_not_inherit_writer_status(self):
        self.tree.write("src/broker/snap.hpp", CLEAN_SNAP)
        self.tree.write("src/broker/lam.cpp", """
#include "broker/snap.hpp"
void Fabric::rebuild() GMMCS_REQUIRES(ctx_) {
  auto fn = [] {
    auto s = std::make_shared<Snap>();
  };
  fn();
}
""")
        findings = self.lint()
        self.assertEqual(self.rules(findings), ["snapshot-mutation"])
        self.assertIn("<lambda>", findings[0][3])

    def test_mutable_handle_member_is_flagged(self):
        self.tree.write("src/broker/snap.hpp", CLEAN_SNAP)
        self.tree.write("src/broker/keep.hpp", """
#include "broker/snap.hpp"
class Cache {
 public:
  std::shared_ptr<Snap> keep_;
};
""")
        findings = self.lint()
        self.assertEqual(self.rules(findings), ["snapshot-mutation"])
        self.assertIn("Cache", findings[0][3])

    def test_const_handle_member_is_clean(self):
        self.tree.write("src/broker/snap.hpp", CLEAN_SNAP)
        self.tree.write("src/broker/keep.hpp", """
#include "broker/snap.hpp"
class Cache {
 public:
  std::shared_ptr<const Snap> keep_;
  SnapPtr also_;
};
""")
        self.assertEqual(self.lint(), [])

    def test_suppression_with_reason_silences(self):
        self.tree.write("src/broker/snap.hpp", CLEAN_SNAP)
        self.tree.write("src/broker/reader.cpp", """
#include "broker/snap.hpp"
void migrate(std::shared_ptr<Snap> s) {
  // gmmcs-lint: allow(snapshot-mutation): one-shot migration, single-threaded
  s->epoch = 1;
}
""")
        findings = self.lint()
        # The parameter itself still trips (no suppression on its line).
        self.assertEqual(len(findings), 1)
        self.tree.write("src/broker/reader.cpp", """
#include "broker/snap.hpp"
// gmmcs-lint: allow(snapshot-mutation): one-shot migration, single-threaded
void migrate(std::shared_ptr<Snap> s) {
  s->epoch = 1;
}
""")
        self.assertEqual(self.lint(), [])


class TestSnapshotPublication(SnapshotCase):
    HOLDER = """
#include "broker/snap.hpp"
#include <atomic>
class Fabric {
 public:
  SnapPtr snapshot() const { return snap_.load(); }
  void publish_now() GMMCS_REQUIRES(ctx_);
  void refresh();
 private:
  std::atomic<SnapPtr> snap_;
};
"""

    def test_store_outside_writer_scope_is_flagged(self):
        self.tree.write("src/broker/snap.hpp", CLEAN_SNAP)
        self.tree.write("src/broker/fabric.hpp", self.HOLDER)
        self.tree.write("src/broker/fabric.cpp", """
#include "broker/fabric.hpp"
void Fabric::refresh() {
  snap_.store(nullptr);
}
""")
        findings = self.lint()
        self.assertEqual(self.rules(findings), ["snapshot-publication"])
        self.assertIn("snap_", findings[0][3])

    def test_store_in_writer_scope_and_loads_are_clean(self):
        self.tree.write("src/broker/snap.hpp", CLEAN_SNAP)
        self.tree.write("src/broker/fabric.hpp", self.HOLDER)
        self.tree.write("src/broker/fabric.cpp", """
#include "broker/fabric.hpp"
void Fabric::publish_now() {
  snap_.store(nullptr, std::memory_order_release);
}
void Fabric::refresh() {
  auto cur = snap_.load(std::memory_order_acquire);
  (void)cur;
}
""")
        self.assertEqual(self.lint(), [])

    def test_atomic_shared_ptr_const_spelling_is_recognized(self):
        self.tree.write("src/broker/snap.hpp", CLEAN_SNAP)
        self.tree.write("src/broker/alt.hpp", """
#include "broker/snap.hpp"
#include <atomic>
class Alt {
 public:
  void oops() { cur_ = nullptr; }
 private:
  std::atomic<std::shared_ptr<const Snap>> cur_;
};
""")
        findings = self.lint()
        self.assertEqual(self.rules(findings), ["snapshot-publication"])


class TestDefaults(SnapshotCase):
    def test_default_types_cover_the_control_plane(self):
        for t in ("ControlSnapshot", "RouteTables", "InterestTable"):
            self.assertIn(t, gmmcs_lint.SNAPSHOT_TYPES)

    def test_pass_runs_with_default_config(self):
        self.tree.write("src/broker/bad.cpp", """
void f(const ControlSnapshot& s) {
  const_cast<ControlSnapshot&>(s);
}
""")
        findings = gmmcs_lint.pass_snapshot(self.tree.sources())
        self.assertEqual(self.rules(findings), ["snapshot-mutation"])

    def test_tree_without_snapshot_types_is_skipped(self):
        self.tree.write("src/common/ok.hpp", "int x;\n")
        self.assertEqual(gmmcs_lint.pass_snapshot(self.tree.sources()), [])


if __name__ == "__main__":
    unittest.main(verbosity=2)
