#!/usr/bin/env python3
"""Unit tests for gmmcs_lint.py: every rule must fire on a seeded fixture
violation and stay quiet on the equivalent clean snippet.

Run directly (`python3 tools/lint/tests/test_gmmcs_lint.py`) or via the
`gmmcs_lint_selftest` ctest.
"""

import sys
import tempfile
import unittest
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
import gmmcs_lint  # noqa: E402


class FixtureTree:
    """A throwaway repo tree: write src/<mod>/<file> snippets, get sources."""

    def __init__(self):
        self._tmp = tempfile.TemporaryDirectory()
        self.root = Path(self._tmp.name)

    def write(self, rel, text):
        p = self.root / rel
        p.parent.mkdir(parents=True, exist_ok=True)
        p.write_text(text)
        return p

    def sources(self):
        files = gmmcs_lint.collect_files(self.root, None)
        return gmmcs_lint.load_sources(self.root, files)

    def cleanup(self):
        self._tmp.cleanup()


class LintCase(unittest.TestCase):
    def setUp(self):
        self.tree = FixtureTree()
        self.addCleanup(self.tree.cleanup)

    def rules(self, findings):
        return [rule for _, _, rule, _ in findings]


# ---------------------------------------------------------------------------
# Pass 1: layering.
# ---------------------------------------------------------------------------

class TestLayering(LintCase):
    def test_upward_include_is_flagged(self):
        self.tree.write("src/common/util.hpp", '#include "broker/event.hpp"\n')
        findings = gmmcs_lint.pass_layering(self.tree.sources())
        self.assertEqual(self.rules(findings), ["layering"])
        self.assertIn("upward include", findings[0][3])

    def test_downward_and_same_layer_includes_are_clean(self):
        self.tree.write("src/broker/node.hpp",
                        '#include "common/bytes.hpp"\n#include "sim/host.hpp"\n')
        self.tree.write("src/sip/agent.hpp", '#include "xgsp/messages.hpp"\n')
        self.assertEqual(gmmcs_lint.pass_layering(self.tree.sources()), [])

    def test_same_layer_cycle_is_flagged(self):
        self.tree.write("src/sim/a.hpp", '#include "transport/b.hpp"\n')
        self.tree.write("src/transport/b.hpp", '#include "sim/a.hpp"\n')
        findings = gmmcs_lint.pass_layering(self.tree.sources())
        self.assertIn("layering-cycle", self.rules(findings))
        self.assertIn("sim", findings[0][3])
        self.assertIn("transport", findings[0][3])

    def test_unknown_module_is_flagged(self):
        self.tree.write("src/rogue/x.hpp", "int x;\n")
        findings = gmmcs_lint.pass_layering(self.tree.sources())
        self.assertEqual(self.rules(findings), ["layering"])

    def test_suppression_with_reason_silences(self):
        self.tree.write(
            "src/common/util.hpp",
            '// gmmcs-lint: allow(layering): prototype shim, tracked in #42\n'
            '#include "broker/event.hpp"\n')
        self.assertEqual(gmmcs_lint.pass_layering(self.tree.sources()), [])

    def test_suppression_without_reason_is_itself_flagged(self):
        src = self.tree.write(
            "src/common/util.hpp",
            '#include "broker/event.hpp"  // gmmcs-lint: allow(layering)\n')
        sources = gmmcs_lint.load_sources(
            self.tree.root, [src])
        meta = gmmcs_lint.check_suppression_reasons(sources[0])
        self.assertEqual(self.rules(meta), ["suppression-reason"])
        # The suppression still works — only the missing reason is reported.
        self.assertEqual(gmmcs_lint.pass_layering(sources), [])


# ---------------------------------------------------------------------------
# Pass 2: result discipline.
# ---------------------------------------------------------------------------

class TestResultDiscipline(LintCase):
    def test_missing_nodiscard_on_header_decl(self):
        self.tree.write("src/common/api.hpp",
                        "Result<int> load(const std::string& s);\n")
        findings = gmmcs_lint.pass_result(self.tree.sources())
        self.assertEqual(self.rules(findings), ["nodiscard"])
        self.assertIn("load", findings[0][3])

    def test_annotated_decl_is_clean(self):
        self.tree.write("src/common/api.hpp",
                        "[[nodiscard]] Result<int> load(const std::string& s);\n"
                        "[[nodiscard]] static Result<Foo> parse_foo(int x);\n")
        self.assertEqual(gmmcs_lint.pass_result(self.tree.sources()), [])

    def test_cpp_definition_of_header_decl_is_clean(self):
        self.tree.write("src/common/api.hpp",
                        "[[nodiscard]] Result<int> load(const std::string& s);\n")
        self.tree.write("src/common/api.cpp",
                        "Result<int> load(const std::string& s) {\n"
                        "  return Result<int>{1};\n}\n")
        self.assertEqual(gmmcs_lint.pass_result(self.tree.sources()), [])

    def test_file_local_cpp_function_needs_nodiscard(self):
        self.tree.write("src/common/impl.cpp",
                        "namespace {\n"
                        "Result<int> helper(int x) { return Result<int>{x}; }\n"
                        "}\n")
        findings = gmmcs_lint.pass_result(self.tree.sources())
        self.assertEqual(self.rules(findings), ["nodiscard"])

    def test_qualified_member_definition_is_clean(self):
        self.tree.write("src/common/impl.cpp",
                        "Result<int> Loader::load(const std::string& s) {\n"
                        "  return Result<int>{1};\n}\n")
        self.assertEqual(gmmcs_lint.pass_result(self.tree.sources()), [])

    def test_discarded_parser_call_is_flagged(self):
        self.tree.write("src/broker/node.cpp",
                        "void f(const Bytes& b) {\n"
                        "  decode(b);\n"
                        "}\n")
        findings = gmmcs_lint.pass_result(self.tree.sources())
        self.assertIn("discarded-result", self.rules(findings))

    def test_bound_parser_call_is_clean(self):
        self.tree.write("src/broker/node.cpp",
                        "void f(const Bytes& b) {\n"
                        "  auto frame = decode(b);\n"
                        "  if (!frame.ok()) return;\n"
                        "  use(frame.value());\n"
                        "}\n")
        self.assertEqual(gmmcs_lint.pass_result(self.tree.sources()), [])

    def test_value_without_guard_is_flagged(self):
        self.tree.write("src/broker/node.cpp",
                        "void f(const Bytes& b) {\n"
                        "  auto frame = decode(b);\n"
                        "  use(frame.value());\n"
                        "}\n")
        findings = gmmcs_lint.pass_result(self.tree.sources())
        self.assertIn("unchecked-value", self.rules(findings))

    def test_moved_value_with_guard_is_clean(self):
        self.tree.write("src/broker/node.cpp",
                        "void f(const Bytes& b) {\n"
                        "  auto frame = decode(b);\n"
                        "  if (!frame.ok()) return;\n"
                        "  use(std::move(frame).value());\n"
                        "}\n")
        self.assertEqual(gmmcs_lint.pass_result(self.tree.sources()), [])

    def test_chained_value_is_flagged(self):
        self.tree.write("src/broker/node.cpp",
                        "void f(const std::string& s) {\n"
                        "  auto v = parse_thing(s).value();\n"
                        "}\n")
        findings = gmmcs_lint.pass_result(self.tree.sources())
        self.assertIn("unchecked-value", self.rules(findings))
        self.assertIn("chained", findings[-1][3])

    def test_guard_in_previous_function_does_not_leak(self):
        self.tree.write("src/broker/node.cpp",
                        "void g(const Bytes& b) {\n"
                        "  auto frame = decode(b);\n"
                        "  if (!frame.ok()) return;\n"
                        "}\n"
                        "void f(const Bytes& b) {\n"
                        "  auto frame = decode(b);\n"
                        "  use(frame.value());\n"
                        "}\n")
        findings = gmmcs_lint.pass_result(self.tree.sources())
        self.assertIn("unchecked-value", self.rules(findings))


# ---------------------------------------------------------------------------
# Pass 3: codec symmetry.
# ---------------------------------------------------------------------------

CODEC = "src/broker/wire.cpp"


class TestCodecSymmetry(LintCase):
    def check(self, text):
        self.tree.write(CODEC, text)
        return gmmcs_lint.pass_codec_symmetry(
            self.tree.sources(), codec_files=[CODEC], text_families=[])

    def test_symmetric_method_pair_is_clean(self):
        self.assertEqual(self.check(
            "Bytes Msg::encode() const {\n"
            "  ByteWriter w;\n  w.u8(1);\n  w.u32(seq);\n  w.lstr(body);\n"
            "  return w.take();\n}\n"
            "Result<Msg> Msg::decode(const Bytes& data) {\n"
            "  ByteReader r(data);\n  Msg m;\n"
            "  r.u8();\n  m.seq = r.u32();\n  m.body = r.lstr();\n"
            "  return m;\n}\n"), [])

    def test_width_drift_is_flagged(self):
        findings = self.check(
            "Bytes Msg::encode() const {\n"
            "  ByteWriter w;\n  w.u8(1);\n  w.u32(seq);\n  return w.take();\n}\n"
            "Result<Msg> Msg::decode(const Bytes& data) {\n"
            "  ByteReader r(data);\n  Msg m;\n"
            "  r.u8();\n  m.seq = r.u16();\n  return m;\n}\n")
        self.assertEqual(self.rules(findings), ["codec-symmetry"])
        self.assertIn("u32", findings[0][3])

    def test_missing_field_in_decode_is_flagged(self):
        findings = self.check(
            "Bytes Msg::encode() const {\n"
            "  ByteWriter w;\n  w.u8(1);\n  w.u32(seq);\n  w.lstr(body);\n"
            "  return w.take();\n}\n"
            "Result<Msg> Msg::decode(const Bytes& data) {\n"
            "  ByteReader r(data);\n  Msg m;\n"
            "  r.u8();\n  m.seq = r.u32();\n  return m;\n}\n")
        self.assertEqual(self.rules(findings), ["codec-symmetry"])

    def test_loop_groups_must_match(self):
        findings = self.check(
            "Bytes Msg::encode() const {\n"
            "  ByteWriter w;\n  w.u16(n);\n"
            "  for (auto v : vals) w.u32(v);\n"
            "  return w.take();\n}\n"
            "Result<Msg> Msg::decode(const Bytes& data) {\n"
            "  ByteReader r(data);\n  Msg m;\n"
            "  auto n = r.u16();\n"
            "  for (std::uint16_t i = 0; i < n; ++i) m.vals.push_back(r.u16());\n"
            "  return m;\n}\n")
        self.assertEqual(self.rules(findings), ["codec-symmetry"])

    def test_matching_flag_guarded_fields_are_clean(self):
        # Conditionally encoded/decoded fields: same flag constant guards
        # the same ops on both sides, even with different spellings of the
        # flags expression.
        self.assertEqual(self.check(
            "Bytes Msg::encode() const {\n"
            "  ByteWriter w;\n  w.u8(flags);\n"
            "  if (flags & kHasExt) w.u32(ext);\n"
            "  w.lstr(body);\n  return w.take();\n}\n"
            "Result<Msg> Msg::decode(const Bytes& data) {\n"
            "  ByteReader r(data);\n  Msg m;\n"
            "  m.flags = r.u8();\n"
            "  if (m.flags & kHasExt) m.ext = r.u32();\n"
            "  m.body = r.lstr();\n  return m;\n}\n"), [])

    def test_conditional_field_missing_on_decode_is_flagged(self):
        findings = self.check(
            "Bytes Msg::encode() const {\n"
            "  ByteWriter w;\n  w.u8(flags);\n"
            "  if (flags & kHasExt) w.u32(ext);\n"
            "  return w.take();\n}\n"
            "Result<Msg> Msg::decode(const Bytes& data) {\n"
            "  ByteReader r(data);\n  Msg m;\n"
            "  m.flags = r.u8();\n  return m;\n}\n")
        self.assertEqual(self.rules(findings), ["codec-symmetry"])
        self.assertIn("kHasExt", findings[0][3])

    def test_different_guard_flags_are_flagged(self):
        # Both sides conditionally handle a u32, but under different flag
        # bits: the wire disagrees whenever the two bits differ.
        findings = self.check(
            "Bytes Msg::encode() const {\n"
            "  ByteWriter w;\n  w.u8(flags);\n"
            "  if (flags & kHasExt) w.u32(ext);\n"
            "  return w.take();\n}\n"
            "Result<Msg> Msg::decode(const Bytes& data) {\n"
            "  ByteReader r(data);\n  Msg m;\n"
            "  m.flags = r.u8();\n"
            "  if (m.flags & kHasAux) m.ext = r.u32();\n  return m;\n}\n")
        self.assertEqual(self.rules(findings), ["codec-symmetry"])

    def test_tag_check_in_if_condition_stays_flat(self):
        # An op inside the `if` condition itself always executes: it must
        # not be grouped away (`if (r.u8() != kTag) return ...`).
        self.assertEqual(self.check(
            "Bytes Msg::encode() const {\n"
            "  ByteWriter w;\n  w.u8(kTag);\n  w.u32(seq);\n"
            "  return w.take();\n}\n"
            "Result<Msg> Msg::decode(const Bytes& data) {\n"
            "  ByteReader r(data);\n  Msg m;\n"
            "  if (r.u8() != kTag) return Error::kBadTag;\n"
            "  m.seq = r.u32();\n  return m;\n}\n"), [])

    def test_helper_splicing_matches_inline_ops(self):
        # encode uses a write_hdr helper; decode reads the same ops inline.
        self.assertEqual(self.check(
            "void write_hdr(ByteWriter& w, int t) {\n  w.u8(t);\n  w.u16(0);\n}\n"
            "Bytes Msg::encode() const {\n"
            "  ByteWriter w;\n  write_hdr(w, 3);\n  w.u32(seq);\n"
            "  return w.take();\n}\n"
            "Result<Msg> Msg::decode(const Bytes& data) {\n"
            "  ByteReader r(data);\n  Msg m;\n"
            "  r.u8();\n  r.u16();\n  m.seq = r.u32();\n  return m;\n}\n"), [])

    def test_dispatch_decoder_checks_each_tag_case(self):
        findings = self.check(
            "Bytes encode(const Ping& p) {\n"
            "  ByteWriter w;\n  w.u8(kPing);\n  w.u64(p.sent);\n"
            "  return w.take();\n}\n"
            "Bytes encode(const Data& d) {\n"
            "  ByteWriter w;\n  w.u8(kData);\n  w.lstr(d.body);\n"
            "  return w.take();\n}\n"
            "Result<Frame> decode(const Bytes& data) {\n"
            "  ByteReader r(data);\n  Frame f;\n"
            "  auto type = r.u8();\n"
            "  switch (type) {\n"
            "    case kPing:\n      f.sent = r.u64();\n      break;\n"
            "    case kData:\n      f.body = r.raw(r.u16());\n      break;\n"
            "  }\n  return f;\n}\n")
        # Ping matches (u8 u64); Data drifts: lstr vs u16+raw is the same
        # wire bytes but lstr normalizes as one token — the pass flags it,
        # which is exactly the drift style the rule exists to catch.
        self.assertEqual(self.rules(findings), ["codec-symmetry"])
        self.assertIn("kData", findings[0][3])

    def test_text_codec_field_coverage(self):
        self.tree.write("src/sip/thing.hpp",
                        "struct Thing {\n"
                        "  std::string name;\n"
                        "  int port = 0;\n"
                        "  std::vector<std::string> tags;\n"
                        "};\n")
        self.tree.write("src/sip/thing.cpp",
                        "std::string Thing::serialize() const {\n"
                        "  return name + join(tags);\n}\n"
                        "Result<Thing> Thing::parse(const std::string& s) {\n"
                        "  Thing t;\n  t.name = s;\n  t.port = 5060;\n"
                        "  return t;\n}\n")
        fam = dict(name="thing", impl="src/sip/thing.cpp",
                   structs=[("src/sip/thing.hpp", "Thing")],
                   encode=["Thing::serialize"], decode=["Thing::parse"],
                   ignore=set())
        findings = gmmcs_lint.pass_codec_symmetry(
            self.tree.sources(), codec_files=[], text_families=[fam])
        msgs = " | ".join(f[3] for f in findings)
        self.assertIn("'tags' is serialized", msgs)   # never parsed
        self.assertIn("'port' is parsed", msgs)       # never serialized
        self.assertEqual(len(findings), 2)


# ---------------------------------------------------------------------------
# Pass 4: switch exhaustiveness.
# ---------------------------------------------------------------------------

ENUMS = {"MessageType": ["kA", "kB", "kC"]}


class TestSwitchExhaustiveness(LintCase):
    def check(self, body):
        self.tree.write("src/broker/node.cpp", body)
        return gmmcs_lint.pass_switch_exhaustiveness(
            self.tree.sources(), enums=ENUMS)

    def test_full_coverage_is_clean(self):
        self.assertEqual(self.check(
            "void f(MessageType t) {\n"
            "  switch (t) {\n"
            "    case MessageType::kA: a(); break;\n"
            "    case MessageType::kB: b(); break;\n"
            "    case MessageType::kC: c(); break;\n"
            "  }\n}\n"), [])

    def test_partial_without_default_is_flagged(self):
        findings = self.check(
            "void f(MessageType t) {\n"
            "  switch (t) {\n"
            "    case MessageType::kA: a(); break;\n"
            "  }\n}\n")
        self.assertEqual(self.rules(findings), ["switch-exhaustive"])
        self.assertIn("kB", findings[0][3])
        self.assertIn("kC", findings[0][3])

    def test_bare_default_break_is_flagged(self):
        findings = self.check(
            "void f(MessageType t) {\n"
            "  switch (t) {\n"
            "    case MessageType::kA: a(); break;\n"
            "    default:\n      break;\n"
            "  }\n}\n")
        self.assertEqual(self.rules(findings), ["switch-exhaustive"])

    def test_commented_default_is_clean(self):
        self.assertEqual(self.check(
            "void f(MessageType t) {\n"
            "  switch (t) {\n"
            "    case MessageType::kA: a(); break;\n"
            "    default:\n"
            "      // kB/kC are replies; ignoring them here is deliberate.\n"
            "      break;\n"
            "  }\n}\n"), [])

    def test_substantive_default_is_clean(self):
        self.assertEqual(self.check(
            "void f(MessageType t) {\n"
            "  switch (t) {\n"
            "    case MessageType::kA: a(); break;\n"
            "    default: return error(t);\n"
            "  }\n}\n"), [])

    def test_switch_over_unconfigured_enum_is_ignored(self):
        self.assertEqual(self.check(
            "void f(Color c) {\n"
            "  switch (c) {\n"
            "    case Color::kRed: break;\n"
            "  }\n}\n"), [])

    def test_enum_collection_from_header(self):
        self.tree.write("src/broker/event.hpp",
                        "enum class MessageType : std::uint8_t {\n"
                        "  kA = 1,\n  kB,\n  kC,\n};\n")
        enums = gmmcs_lint.collect_enums(self.tree.sources())
        self.assertEqual(enums, {"MessageType": ["kA", "kB", "kC"]})


# ---------------------------------------------------------------------------
# --fix: auto-inserting [[nodiscard]].
# ---------------------------------------------------------------------------

class TestFix(LintCase):
    def test_fix_inserts_nodiscard_and_relints_clean(self):
        self.tree.write("src/common/api.hpp",
                        "Result<int> load(int x);\n"
                        "  Result<Frame> parse_frame(const Bytes& b);\n"
                        "[[nodiscard]] Result<int> fine(int x);\n")
        findings, _ = gmmcs_lint.run(self.tree.root)
        self.assertEqual(self.rules(findings), ["nodiscard", "nodiscard"])
        edits = gmmcs_lint.apply_fixes(self.tree.root, findings)
        self.assertEqual(edits, 2)
        text = (self.tree.root / "src/common/api.hpp").read_text()
        self.assertIn("[[nodiscard]] Result<int> load", text)
        # Indentation is preserved; the attribute lands before the type.
        self.assertIn("  [[nodiscard]] Result<Frame> parse_frame", text)
        findings, _ = gmmcs_lint.run(self.tree.root)
        self.assertEqual(findings, [])

    def test_fix_is_idempotent(self):
        self.tree.write("src/common/api.hpp", "Result<int> load(int x);\n")
        findings, _ = gmmcs_lint.run(self.tree.root)
        self.assertEqual(gmmcs_lint.apply_fixes(self.tree.root, findings), 1)
        before = (self.tree.root / "src/common/api.hpp").read_text()
        findings, _ = gmmcs_lint.run(self.tree.root)
        self.assertEqual(gmmcs_lint.apply_fixes(self.tree.root, findings), 0)
        self.assertEqual((self.tree.root / "src/common/api.hpp").read_text(),
                         before)


# ---------------------------------------------------------------------------
# End-to-end: run() over a mixed fixture tree.
# ---------------------------------------------------------------------------

class TestRun(LintCase):
    def test_clean_tree_reports_nothing(self):
        self.tree.write("src/common/ok.hpp",
                        "[[nodiscard]] Result<int> load(int x);\n")
        self.tree.write("src/broker/use.cpp",
                        '#include "common/ok.hpp"\n'
                        "void f() {\n"
                        "  auto r = load(1);\n"
                        "  if (r.ok()) use(r.value());\n"
                        "}\n")
        findings, nfiles = gmmcs_lint.run(self.tree.root)
        self.assertEqual(findings, [])
        self.assertEqual(nfiles, 2)

    def test_dirty_tree_reports_everything_sorted(self):
        self.tree.write("src/common/bad.hpp",
                        '#include "core/app.hpp"\n'
                        "Result<int> load(int x);\n")
        findings, _ = gmmcs_lint.run(self.tree.root)
        self.assertEqual(self.rules(findings), ["layering", "nodiscard"])
        self.assertEqual(findings, sorted(findings))


if __name__ == "__main__":
    unittest.main(verbosity=2)
