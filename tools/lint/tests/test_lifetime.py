#!/usr/bin/env python3
"""Unit tests for the gmmcs-lint lifetime pass (pass 7, DESIGN.md §14).

Deferred-capture escape analysis: every callable handed to a deferred
sink (EventLoop::schedule_*, ServiceCenter::submit, callback-storing
methods found by the may-defer fixpoint) has its captures classified;
raw pointers / references / `this` escaping the registering frame are
findings unless the pointee is GMMCS_PINNED or one of the structural
carve-outs proves the capture cannot outlive its object.

The flagship fixture replays the PR 7 kPing use-after-free (a deferred
pong job capturing a raw StreamConnection* that ghost eviction freed
first — the bug this pass exists to make statically impossible); its
runtime twin is tests/lifetime_regression_test.cpp, which reconstructs
the same shape under ASan and asserts the weak_ptr fix survives.

Run directly (`python3 tools/lint/tests/test_lifetime.py`) or via the
`gmmcs_lint_lifetime_selftest` ctest.
"""

import sys
import unittest
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
sys.path.insert(0, str(Path(__file__).resolve().parent))
import gmmcs_lint  # noqa: E402
from test_gmmcs_lint import LintCase  # noqa: E402

# A minimal event-loop surface: schedule_at/schedule_after/cancel/run.
# The sink names are the seed inventory, so no annotation is needed —
# any call spelled schedule_*(..., fn) defers `fn`.
LOOP_HEADER = """
#pragma once
using SmallFn = std::function<void()>;
class EventLoop {
 public:
  int schedule_at(int when, SmallFn fn);
  int schedule_after(int delay, SmallFn fn);
  void cancel(int id);
  void run();
};
"""

# A connection whose on_message STORES its callable: the may-defer
# fixpoint must promote on_message to a sink.
CONN_HEADER = """
#pragma once
#include "sim/loop.hpp"
class Conn {
 public:
  void on_message(SmallFn fn) { fn_ = std::move(fn); }
  void send();
  SmallFn fn_;
};
"""


class LifetimeCase(LintCase):
    def lint(self):
        return gmmcs_lint.pass_lifetime(self.tree.sources())

    def write_loop(self):
        self.tree.write("src/sim/loop.hpp", LOOP_HEADER)

    def write_conn(self):
        self.write_loop()
        self.tree.write("src/transport/conn.hpp", CONN_HEADER)


class TestSinkInventory(LifetimeCase):
    def test_raw_this_into_schedule_at_is_flagged(self):
        self.write_loop()
        self.tree.write("src/broker/b.hpp", """
#include "sim/loop.hpp"
class Broker {
 public:
  void kick() { loop_->schedule_at(5, [this] { tick(); }); }
  void tick();
  EventLoop* loop_;
};
""")
        findings = self.lint()
        self.assertEqual(self.rules(findings), ["lifetime"])
        self.assertIn("raw `this`", findings[0][3])
        self.assertIn("schedule_at", findings[0][3])

    def test_pinned_class_this_is_clean(self):
        self.write_loop()
        self.tree.write("src/broker/b.hpp", """
#include "sim/loop.hpp"
class GMMCS_PINNED("broker outlives the run") Broker {
 public:
  void kick() { loop_->schedule_at(5, [this] { tick(); }); }
  void tick();
  EventLoop* loop_;
};
""")
        self.assertEqual(self.lint(), [])

    def test_empty_pin_reason_is_flagged(self):
        self.write_loop()
        self.tree.write("src/broker/b.hpp", """
#include "sim/loop.hpp"
class GMMCS_PINNED("") Broker {
 public:
  void tick();
  EventLoop* loop_;
};
""")
        findings = self.lint()
        self.assertEqual(self.rules(findings), ["lifetime"])
        self.assertIn("no reason string", findings[0][3])

    def test_fixpoint_promotes_callback_registrar(self):
        """on_message stores its SmallFn into a member, so it defers
        work: a raw `this` flowing into it must be flagged even though
        on_message is not a seed sink."""
        self.write_conn()
        self.tree.write("src/broker/b.cpp", """
#include "transport/conn.hpp"
class Broker {
 public:
  void attach(Conn& peer) {
    peer.on_message([this] { route(); });
  }
  void route();
};
""")
        findings = self.lint()
        self.assertEqual(self.rules(findings), ["lifetime"])
        self.assertIn("on_message", findings[0][3])

    def test_fixpoint_propagates_through_wrapper(self):
        """A function that forwards its callable into a known sink is
        itself a sink (two-hop fixpoint)."""
        self.write_conn()
        self.tree.write("src/broker/hook.hpp", """
#include "transport/conn.hpp"
class Hub {
 public:
  void hook(SmallFn f) { conn_.on_message(std::move(f)); }
  Conn conn_;
};
""")
        self.tree.write("src/broker/b.cpp", """
#include "broker/hook.hpp"
class Broker {
 public:
  void attach(Hub& hub) { hub.hook([this] { route(); }); }
  void route();
};
""")
        findings = self.lint()
        self.assertEqual(self.rules(findings), ["lifetime"])
        self.assertIn("hook", findings[0][3])

    def test_immediately_invoked_callable_param_is_not_a_sink(self):
        """A function that only CALLS its callable parameter does not
        defer it; passing `this` in is fine."""
        self.write_loop()
        self.tree.write("src/broker/each.hpp", """
#include "sim/loop.hpp"
class Walker {
 public:
  void each(SmallFn f) { f(); }
};
""")
        self.tree.write("src/broker/b.cpp", """
#include "broker/each.hpp"
class Broker {
 public:
  void visit(Walker& w) { w.each([this] { route(); }); }
  void route();
};
""")
        self.assertEqual(self.lint(), [])


class TestCaptureClassification(LifetimeCase):
    def test_capture_everything_by_reference_is_flagged(self):
        self.write_loop()
        self.tree.write("src/broker/b.cpp", """
#include "sim/loop.hpp"
void drive(EventLoop& loop) {
  int hits = 0;
  loop.schedule_at(1, [&] { ++hits; });
}
""")
        findings = self.lint()
        self.assertEqual(self.rules(findings), ["lifetime"])
        self.assertIn("[&]", findings[0][3])

    def test_default_copy_capture_in_member_function_is_flagged(self):
        """[=] in a member function implicitly copies raw `this`."""
        self.write_loop()
        self.tree.write("src/broker/b.hpp", """
#include "sim/loop.hpp"
class Broker {
 public:
  void kick() { loop_->schedule_at(5, [=] { tick(); }); }
  void tick();
  EventLoop* loop_;
};
""")
        findings = self.lint()
        self.assertEqual(self.rules(findings), ["lifetime"])
        self.assertIn("[=]", findings[0][3])

    def test_star_this_copy_is_clean(self):
        self.write_loop()
        self.tree.write("src/broker/b.hpp", """
#include "sim/loop.hpp"
class Probe {
 public:
  void kick() { loop_->schedule_at(5, [*this] { }); }
  EventLoop* loop_;
};
""")
        self.assertEqual(self.lint(), [])

    def test_shared_ptr_copy_capture_is_clean(self):
        self.write_loop()
        self.tree.write("src/broker/b.cpp", """
#include "sim/loop.hpp"
void drive(EventLoop& loop) {
  auto state = std::make_shared<int>(0);
  loop.schedule_at(1, [state] { ++*state; });
}
""")
        self.assertEqual(self.lint(), [])

    def test_weak_ptr_init_capture_is_clean(self):
        self.write_conn()
        self.tree.write("src/broker/b.cpp", """
#include "transport/conn.hpp"
void drive(EventLoop& loop) {
  auto conn = std::make_shared<Conn>();
  loop.schedule_at(1, [w = std::weak_ptr(conn)] {
    auto c = w.lock();
    if (!c) return;
    c->send();
  });
}
""")
        self.assertEqual(self.lint(), [])

    def test_reference_capture_of_local_is_flagged(self):
        self.write_loop()
        self.tree.write("src/broker/b.cpp", """
#include "sim/loop.hpp"
void drive(EventLoop& loop) {
  int counter = 0;
  loop.schedule_at(1, [&counter] { ++counter; });
}
""")
        findings = self.lint()
        self.assertEqual(self.rules(findings), ["lifetime"])
        self.assertIn("&counter", findings[0][3])

    def test_raw_pointer_from_shared_get_is_flagged(self):
        self.write_conn()
        self.tree.write("src/broker/b.cpp", """
#include "transport/conn.hpp"
void drive(EventLoop& loop) {
  auto conn = std::make_shared<Conn>();
  loop.schedule_at(1, [p = conn.get()] { p->send(); });
}
""")
        findings = self.lint()
        self.assertEqual(self.rules(findings), ["lifetime"])
        self.assertIn("kPing", findings[0][3])

    def test_named_lambda_passed_by_name_is_resolved(self):
        self.write_loop()
        self.tree.write("src/broker/b.hpp", """
#include "sim/loop.hpp"
class Broker {
 public:
  void kick() {
    auto job = [this] { tick(); };
    loop_->schedule_at(1, job);
  }
  void tick();
  EventLoop* loop_;
};
""")
        findings = self.lint()
        self.assertEqual(self.rules(findings), ["lifetime"])
        self.assertIn("raw `this`", findings[0][3])

    def test_factory_return_type_resolves_source(self):
        """`auto c = make_conn()` resolves through the factory's declared
        shared_ptr return type, so the raw .get() capture is both flagged
        and mechanically fixable."""
        self.write_conn()
        self.tree.write("src/broker/b.cpp", """
#include "transport/conn.hpp"
std::shared_ptr<Conn> make_conn() { return std::make_shared<Conn>(); }
void drive(EventLoop& loop) {
  auto conn = make_conn();
  loop.schedule_at(1, [p = conn.get()] { p->send(); });
}
""")
        findings = self.lint()
        self.assertEqual(self.rules(findings), ["lifetime"])
        self.assertTrue(gmmcs_lint.LIFETIME_FIXES, "expected a weak_ptr fix")


class TestCarveOuts(LifetimeCase):
    def test_registration_on_self_is_clean(self):
        """A raw pointer derived from the very object the callable is
        stored on cannot outlive its storage slot."""
        self.write_conn()
        self.tree.write("src/broker/b.cpp", """
#include "transport/conn.hpp"
void wire(Conn& ignored) {
  auto conn = std::make_shared<Conn>();
  conn->on_message([raw = conn.get()] { raw->send(); });
}
""")
        self.assertEqual(self.lint(), [])

    def test_cancel_discipline_is_clean(self):
        """TaskId stored in a member the class cancels in teardown: the
        deferred callable never runs after the object dies."""
        self.write_loop()
        self.tree.write("src/broker/b.hpp", """
#include "sim/loop.hpp"
class Prober {
 public:
  void arm() { probe_id_ = loop_->schedule_after(10, [this] { fire(); }); }
  ~Prober() { loop_->cancel(probe_id_); }
  void fire();
  EventLoop* loop_;
  int probe_id_ = 0;
};
""")
        self.assertEqual(self.lint(), [])

    def test_cancel_of_unrelated_member_is_not_enough(self):
        self.write_loop()
        self.tree.write("src/broker/b.hpp", """
#include "sim/loop.hpp"
class Prober {
 public:
  void arm() { probe_id_ = loop_->schedule_after(10, [this] { fire(); }); }
  ~Prober() { loop_->cancel(other_id_); }
  void fire();
  EventLoop* loop_;
  int probe_id_ = 0;
  int other_id_ = 0;
};
""")
        findings = self.lint()
        self.assertEqual(self.rules(findings), ["lifetime"])

    def test_bind_with_unbind_release_is_clean(self):
        """bind-style sinks: a class that also unbinds releases its
        handler on its own teardown path."""
        self.write_loop()
        self.tree.write("src/transport/l.hpp", """
#include "sim/loop.hpp"
class Host {
 public:
  void bind(int port, SmallFn fn);
  void unbind(int port);
};
class Listener {
 public:
  void start() { host_->bind(port_, [this] { accept(); }); }
  ~Listener() { host_->unbind(port_); }
  void accept();
  Host* host_;
  int port_ = 0;
};
""")
        self.assertEqual(self.lint(), [])

    def test_bind_without_unbind_is_flagged(self):
        self.write_loop()
        self.tree.write("src/transport/l.hpp", """
#include "sim/loop.hpp"
class Host {
 public:
  void bind(int port, SmallFn fn);
  void unbind(int port);
};
class Leaker {
 public:
  void start() { host_->bind(port_, [this] { accept(); }); }
  void accept();
  Host* host_;
  int port_ = 0;
};
""")
        findings = self.lint()
        self.assertEqual(self.rules(findings), ["lifetime"])

    def test_drain_after_registration_is_clean(self):
        """The bench/driver shape: register work, then run the loop to
        completion before the frame's locals die."""
        self.write_loop()
        self.tree.write("src/broker/b.cpp", """
#include "sim/loop.hpp"
void experiment(EventLoop& loop) {
  int hits = 0;
  loop.schedule_at(1, [&hits] { ++hits; });
  loop.run();
}
""")
        self.assertEqual(self.lint(), [])

    def test_self_storage_sink_is_clean(self):
        """Storing a `this`-capture into a member slot of this very
        object: the callable dies with the object."""
        self.write_loop()
        self.tree.write("src/broker/b.hpp", """
#include "sim/loop.hpp"
class Player {
 public:
  void on_done(SmallFn f) { done_ = std::move(f); }
  void start() { on_done([this] { reset(); }); }
  void reset();
  SmallFn done_;
};
""")
        self.assertEqual(self.lint(), [])

    def test_exclusive_receiver_member_is_clean(self):
        """The sink object is a value member of the capturing class: the
        stored callable cannot outlive `this`."""
        self.write_conn()
        self.tree.write("src/broker/b.hpp", """
#include "transport/conn.hpp"
class Session {
 public:
  void start() { conn_.on_message([this] { route(); }); }
  void route();
  Conn conn_;
};
""")
        self.assertEqual(self.lint(), [])

    def test_suppression_with_reason_silences(self):
        self.write_loop()
        self.tree.write("src/broker/b.cpp", """
#include "sim/loop.hpp"
void drive(EventLoop& loop) {
  int hits = 0;
  // gmmcs-lint: allow(lifetime): loop drained by caller before return
  loop.schedule_at(1, [&hits] { ++hits; });
}
""")
        self.assertEqual(self.lint(), [])


# The PR 7 kPing bug, reduced: ghost eviction erases the shared_ptr from
# the peer table while a pong replying to kPing is still queued; the
# deferred job's raw StreamConnection* then dangles. The runtime twin
# (tests/lifetime_regression_test.cpp) executes this exact shape under
# ASan and asserts the weak_ptr rewrite survives eviction.
KPING_BROKEN = """
#include "transport/conn.hpp"
class Fabric {
 public:
  void pong(int peer) {
    auto conn = table_[peer];
    loop_->schedule_after(3, [c = conn.get()] { c->send(); });
  }
  void evict(int peer) { table_.erase(peer); }
  EventLoop* loop_;
  std::map<int, std::shared_ptr<Conn>> table_;
};
"""

KPING_FIXED = """
#include "transport/conn.hpp"
class Fabric {
 public:
  void pong(int peer) {
    auto conn = table_[peer];
    loop_->schedule_after(3, [c_weak = std::weak_ptr(conn)] {
      auto c = c_weak.lock();
      if (!c) return;
      c->send();
    });
  }
  void evict(int peer) { table_.erase(peer); }
  EventLoop* loop_;
  std::map<int, std::shared_ptr<Conn>> table_;
};
"""


class TestKpingRegression(LifetimeCase):
    def test_kping_uaf_shape_is_caught(self):
        self.write_conn()
        self.tree.write("src/broker/fabric.hpp", KPING_BROKEN)
        findings = self.lint()
        self.assertEqual(self.rules(findings), ["lifetime"])
        self.assertIn("kPing", findings[0][3])
        self.assertIn("weak_ptr", findings[0][3])

    def test_kping_weak_ptr_fix_shape_is_clean(self):
        self.write_conn()
        self.tree.write("src/broker/fabric.hpp", KPING_FIXED)
        self.assertEqual(self.lint(), [])


class TestFix(LifetimeCase):
    def _seed_fixable(self):
        self.write_conn()
        self.tree.write("src/broker/b.cpp", """
#include "transport/conn.hpp"
void drive(EventLoop& loop) {
  auto conn = std::make_shared<Conn>();
  loop.schedule_at(1, [p = conn.get()] { p->send(); });
}
""")

    def test_fix_rewrites_raw_capture_to_weak_ptr(self):
        self._seed_fixable()
        findings = self.lint()
        self.assertEqual(self.rules(findings), ["lifetime"])
        edits = gmmcs_lint.apply_fixes(self.tree.root, findings)
        self.assertEqual(edits, 1)
        text = (self.tree.root / "src/broker/b.cpp").read_text()
        self.assertIn("p_weak = std::weak_ptr(conn)", text)
        self.assertIn("auto p = p_weak.lock(); if (!p) return;", text)
        self.assertEqual(self.lint(), [])  # the fixed tree is clean

    def test_fix_is_idempotent(self):
        self._seed_fixable()
        edits = gmmcs_lint.apply_fixes(self.tree.root, self.lint())
        self.assertEqual(edits, 1)
        after_first = (self.tree.root / "src/broker/b.cpp").read_text()
        edits = gmmcs_lint.apply_fixes(self.tree.root, self.lint())
        self.assertEqual(edits, 0)
        self.assertEqual((self.tree.root / "src/broker/b.cpp").read_text(),
                         after_first)

    def test_no_fix_for_moved_from_source(self):
        """weak_ptr(moved-from shared_ptr) is empty — the rewrite would
        turn the handler into a silent no-op, so the finding stands
        without a mechanical fix."""
        self.write_conn()
        self.tree.write("src/broker/b.hpp", """
#include "transport/conn.hpp"
class Keeper {
 public:
  void adopt(EventLoop& loop) {
    auto conn = std::make_shared<Conn>();
    loop.schedule_at(1, [p = conn.get()] { p->send(); });
    kept_ = std::move(conn);
  }
  std::shared_ptr<Conn> kept_;
};
""")
        findings = self.lint()
        self.assertEqual(self.rules(findings), ["lifetime"])
        self.assertEqual(gmmcs_lint.LIFETIME_FIXES, [])


if __name__ == "__main__":
    unittest.main()
