#!/usr/bin/env python3
"""Unit tests for the gmmcs-lint wire pass (pass 9, DESIGN.md §16).

Untrusted-input taint analysis: raw ByteReader reads (u8/u16/u32/u64)
are wire-tainted and must not reach allocation sizes, container
indexing, loop bounds, or Payload::slice offsets without a dominating
remaining()/protocol-max guard. Checked bounded reads
(read_len_bounded / read_count_u8/u16/u32) and std::min clamps are
born sanitized; cursor-derived quantities (position(), remaining(),
rest().size()) are frame-bounded and never tainted. The flagship
fixture replays the real pre-fix kPeerEvent decode this tree shipped:
`std::uint16_t n = r.u16(); targets.reserve(n);` — a 3-byte hostile
frame claiming 65535 targets reserved 256 KiB before the first bounds
check ran.

Run directly (`python3 tools/lint/tests/test_wire.py`) or via the
`gmmcs_lint_wire_selftest` ctest.
"""

import sys
import unittest
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
sys.path.insert(0, str(Path(__file__).resolve().parent))
import gmmcs_lint  # noqa: E402
from test_gmmcs_lint import LintCase  # noqa: E402


class WireCase(LintCase):
    def lint(self):
        return gmmcs_lint.pass_wire(self.tree.sources())

    def assert_clean(self):
        self.assertEqual(self.lint(), [])

    def assert_flagged(self, needle, count=1):
        findings = self.lint()
        self.assertEqual(self.rules(findings), ["wire"] * count,
                         f"expected {count} wire finding(s), got: {findings}")
        self.assertIn(needle, findings[0][3])
        return findings


# ---------------------------------------------------------------------------
# Taint sources reaching allocation sinks.
# ---------------------------------------------------------------------------

class TestAllocationSinks(WireCase):
    def test_replayed_peer_event_count_finding(self):
        # The real bug: broker/event.cpp trusted a u16 target count
        # straight off the wire, reserving up to 65535 * 4 bytes for a
        # frame that could be 3 bytes long.
        self.tree.write("src/broker/event.cpp", """
void decode_peer(ByteReader& r, PeerEvent& f) {
  std::uint16_t n = r.u16();
  f.targets.reserve(n);
  for (std::size_t i = 0; i < n; ++i) f.targets.push_back(r.u32());
}
""")
        findings = self.lint()
        self.assertEqual(self.rules(findings), ["wire", "wire"])
        self.assertIn("drives an allocation size", findings[0][3])
        self.assertIn("bounds this loop", findings[1][3])

    def test_tainted_resize_is_flagged(self):
        self.tree.write("src/rtp/decode.cpp", """
void decode(ByteReader& r, Bytes& out) {
  std::uint32_t len = r.u32();
  out.resize(len);
}
""")
        self.assert_flagged("drives an allocation size")

    def test_tainted_bytes_ctor_is_flagged(self):
        self.tree.write("src/rtp/decode.cpp", """
Bytes decode(ByteReader& r) {
  std::uint32_t len = r.u32();
  return Bytes(len);
}
""")
        self.assert_flagged("drives an allocation size")

    def test_tainted_bytewriter_reserve_is_flagged(self):
        self.tree.write("src/broker/encode.cpp", """
void relay(ByteReader& r) {
  std::uint32_t claimed = r.u32();
  ByteWriter w(claimed);
  w.u8(1);
}
""")
        self.assert_flagged("drives an allocation size")

    def test_tainted_array_new_is_flagged(self):
        self.tree.write("src/h323/decode.cpp", """
void decode(ByteReader& r) {
  std::uint32_t n = r.u32();
  auto* slots = new std::uint32_t[n];
  use(slots);
}
""")
        self.assert_flagged("drives an allocation size")


# ---------------------------------------------------------------------------
# Non-allocation sinks: loops, indexing, slice.
# ---------------------------------------------------------------------------

class TestOtherSinks(WireCase):
    def test_tainted_loop_bound_is_flagged(self):
        self.tree.write("src/h323/decode.cpp", """
void decode(ByteReader& r, Msg& m) {
  std::uint8_t ncaps = r.u8();
  for (std::size_t i = 0; i < ncaps; ++i) m.caps.push_back(r.u8());
}
""")
        self.assert_flagged("bounds this loop")

    def test_tainted_while_bound_is_flagged(self):
        self.tree.write("src/h323/decode.cpp", """
void decode(ByteReader& r, Msg& m) {
  std::uint8_t n = r.u8();
  while (n--) m.caps.push_back(r.u8());
}
""")
        self.assert_flagged("bounds this loop")

    def test_tainted_index_is_flagged(self):
        self.tree.write("src/streaming/decode.cpp", """
void decode(ByteReader& r, Table& table) {
  std::uint16_t idx = r.u16();
  table.entries[idx] = 1;
}
""")
        self.assert_flagged("indexes a container")

    def test_tainted_slice_offset_is_flagged(self):
        self.tree.write("src/broker/decode.cpp", """
void decode(ByteReader& r, const Payload& frame, Event& e) {
  std::uint32_t len = r.u32();
  e.payload = frame.slice(0, len);
}
""")
        self.assert_flagged("reaches Payload::slice")


# ---------------------------------------------------------------------------
# Sanitizers: dominating guards and born-sanitized reads.
# ---------------------------------------------------------------------------

class TestSanitizers(WireCase):
    def test_remaining_guard_sanitizes(self):
        self.tree.write("src/broker/decode.cpp", """
void decode(ByteReader& r, PeerEvent& f) {
  std::uint16_t n = r.u16();
  if (std::size_t{4} * n > r.remaining()) return;
  f.targets.reserve(n);
  for (std::size_t i = 0; i < n; ++i) f.targets.push_back(r.u32());
}
""")
        self.assert_clean()

    def test_protocol_max_constant_guard_sanitizes(self):
        self.tree.write("src/h323/decode.cpp", """
void decode(ByteReader& r, Msg& m) {
  std::uint8_t n = r.u8();
  if (n > kMaxCapabilities) return;
  m.caps.reserve(n);
}
""")
        self.assert_clean()

    def test_integer_literal_guard_sanitizes(self):
        self.tree.write("src/rtp/decode.cpp", """
void decode(ByteReader& r, Bytes& out) {
  std::uint32_t len = r.u32();
  if (len > 1500) return;
  out.resize(len);
}
""")
        self.assert_clean()

    def test_zero_comparison_does_not_sanitize(self):
        # `n > 0` admits every hostile value; it is not an upper bound.
        self.tree.write("src/rtp/decode.cpp", """
void decode(ByteReader& r, Bytes& out) {
  std::uint32_t len = r.u32();
  if (len > 0) {
    out.resize(len);
  }
}
""")
        self.assert_flagged("drives an allocation size")

    def test_std_min_clamp_is_born_sanitized(self):
        self.tree.write("src/rtp/decode.cpp", """
void decode(ByteReader& r, Bytes& out) {
  std::size_t len = std::min<std::size_t>(r.u32(), r.remaining());
  out.resize(len);
}
""")
        self.assert_clean()

    def test_read_len_bounded_is_born_sanitized(self):
        self.tree.write("src/broker/decode.cpp", """
void decode(ByteReader& r, const Payload& frame, Event& e) {
  auto len = r.read_len_bounded(r.remaining());
  if (!len.ok()) return;
  std::size_t at = r.position();
  e.payload = frame.slice(at, len.value());
}
""")
        self.assert_clean()

    def test_read_count_is_born_sanitized(self):
        self.tree.write("src/broker/decode.cpp", """
void decode(ByteReader& r, PeerEvent& f) {
  auto n = r.read_count_u16(4);
  if (!n.ok()) return;
  f.targets.reserve(n.value());
  for (std::size_t i = 0; i < n.value(); ++i) f.targets.push_back(r.u32());
}
""")
        self.assert_clean()

    def test_guard_only_dominates_later_uses(self):
        # The sink precedes the guard: textual dominance must not credit
        # a check that runs after the allocation already happened.
        self.tree.write("src/rtp/decode.cpp", """
void decode(ByteReader& r, Bytes& out) {
  std::uint32_t len = r.u32();
  out.resize(len);
  if (len > r.remaining()) return;
}
""")
        self.assert_flagged("drives an allocation size")

    def test_self_guarded_loop_condition_is_clean(self):
        self.tree.write("src/h323/decode.cpp", """
void decode(ByteReader& r, Msg& m) {
  std::uint8_t n = r.u8();
  for (std::size_t i = 0; i < n && i < kMaxCapabilities; ++i) {
    m.caps.push_back(r.u8());
  }
}
""")
        self.assert_clean()


# ---------------------------------------------------------------------------
# The frame-bounded lattice point: cursor-derived values are not tainted.
# ---------------------------------------------------------------------------

class TestFrameBounded(WireCase):
    def test_remaining_and_rest_are_not_tainted(self):
        self.tree.write("src/rtp/decode.cpp", """
void decode(ByteReader& r, Bytes& out) {
  std::size_t len = r.remaining();
  out.resize(len);
  out.resize(r.rest().size());
}
""")
        self.assert_clean()

    def test_position_into_slice_is_clean(self):
        self.tree.write("src/rtp/decode.cpp", """
void decode(ByteReader& r, const Payload& frame, Packet& p) {
  std::size_t at = r.position();
  p.payload = frame.slice(at, r.rest().size());
}
""")
        self.assert_clean()


# ---------------------------------------------------------------------------
# Taint propagation: assignment chains, helpers, call sites.
# ---------------------------------------------------------------------------

class TestPropagation(WireCase):
    def test_taint_flows_through_assignment_chain(self):
        self.tree.write("src/broker/decode.cpp", """
void decode(ByteReader& r, Bytes& out) {
  std::uint32_t raw = r.u32();
  std::size_t len = raw;
  std::size_t padded = len + 4;
  out.resize(padded);
}
""")
        self.assert_flagged("drives an allocation size")

    def test_masked_value_stays_tainted(self):
        # b0 & 0x1F still ranges to 31: masking narrows, it does not bound
        # against the frame. The rtcp report-block finding depends on this.
        self.tree.write("src/rtp/rtcp_decode.cpp", """
void decode(ByteReader& r, Rtcp& p) {
  std::uint8_t b0 = r.u8();
  std::size_t count = b0 & 0x1F;
  p.reports.reserve(count);
}
""")
        self.assert_flagged("drives an allocation size")

    def test_taint_through_helper_return(self):
        # decode_count() returns a raw read; its callers inherit the taint.
        self.tree.write("src/h323/decode.cpp", """
static std::uint32_t decode_count(ByteReader& r) {
  return r.u32();
}
void decode(ByteReader& r, Msg& m) {
  std::uint32_t n = decode_count(r);
  m.caps.reserve(n);
}
""")
        self.assert_flagged("drives an allocation size")

    def test_helper_returning_bounded_read_is_clean(self):
        self.tree.write("src/h323/decode.cpp", """
static std::size_t decode_count(ByteReader& r) {
  return std::min<std::size_t>(r.u32(), r.remaining());
}
void decode(ByteReader& r, Msg& m) {
  std::size_t n = decode_count(r);
  m.caps.reserve(n);
}
""")
        self.assert_clean()

    def test_tainted_argument_to_sinking_param_is_flagged(self):
        self.tree.write("src/broker/decode.cpp", """
static void grow(Bytes& out, std::size_t len) {
  out.resize(len);
}
void decode(ByteReader& r, Bytes& out) {
  std::uint32_t len = r.u32();
  grow(out, len);
}
""")
        self.assert_flagged("unguarded size/bound")

    def test_guarded_argument_to_sinking_param_is_clean(self):
        self.tree.write("src/broker/decode.cpp", """
static void grow(Bytes& out, std::size_t len) {
  out.resize(len);
}
void decode(ByteReader& r, Bytes& out) {
  std::uint32_t len = r.u32();
  if (len > r.remaining()) return;
  grow(out, len);
}
""")
        self.assert_clean()


# ---------------------------------------------------------------------------
# The wrap rule: guard arithmetic must not overflow before comparing.
# ---------------------------------------------------------------------------

class TestWrapRule(WireCase):
    def test_narrow_guard_multiplication_is_flagged(self):
        # n * 4 on a uint16 wraps at 16384; the guard passes and the
        # attack sails through.
        self.tree.write("src/broker/decode.cpp", """
void decode(ByteReader& r, PeerEvent& f) {
  std::uint16_t n = r.u16();
  if (n * 4 > r.remaining()) return;
  f.targets.reserve(n);
}
""")
        self.assert_flagged("can wrap before the comparison")

    def test_widened_guard_multiplication_is_clean(self):
        self.tree.write("src/broker/decode.cpp", """
void decode(ByteReader& r, PeerEvent& f) {
  std::uint16_t n = r.u16();
  if (std::size_t{4} * n > r.remaining()) return;
  f.targets.reserve(n);
}
""")
        self.assert_clean()

    def test_kconstant_operand_widens(self):
        self.tree.write("src/rtp/rtcp_decode.cpp", """
void decode(ByteReader& r, Rtcp& p) {
  std::uint8_t b0 = r.u8();
  std::size_t count = b0 & 0x1F;
  if (kReportBlockBytes * count > r.remaining()) return;
  p.reports.reserve(count);
}
""")
        self.assert_clean()


# ---------------------------------------------------------------------------
# The text half: throwing/unbounded numeric parses.
# ---------------------------------------------------------------------------

class TestTextParses(WireCase):
    def test_std_stoi_is_flagged(self):
        self.tree.write("src/sip/parse.cpp", """
int cseq(const std::string& value) {
  return std::stoi(value);
}
""")
        self.assert_flagged("throwing/unbounded numeric parse 'stoi'")

    def test_strtoul_is_flagged(self):
        self.tree.write("src/streaming/parse.cpp", """
unsigned long port(const char* s) {
  return strtoul(s, nullptr, 10);
}
""")
        self.assert_flagged("throwing/unbounded numeric parse 'strtoul'")

    def test_gmmcs_parse_helpers_are_clean(self):
        self.tree.write("src/sip/parse.cpp", """
int cseq(const std::string& value) {
  return static_cast<int>(parse_u32(value).value_or(0));
}
""")
        self.assert_clean()

    def test_sto_in_comment_is_ignored(self):
        self.tree.write("src/sip/parse.cpp", """
// The pre-fix code used std::stoi(value) here and threw on overflow.
int cseq(const std::string& value) {
  return static_cast<int>(parse_u32(value).value_or(0));
}
""")
        self.assert_clean()


# ---------------------------------------------------------------------------
# Scope and suppression.
# ---------------------------------------------------------------------------

class TestScope(WireCase):
    def test_sim_module_is_trusted(self):
        # Spec files and bench configs are local artifacts, not peer bytes.
        self.tree.write("src/sim/config.cpp", """
int parse(const std::string& v) {
  return std::stoi(v);
}
""")
        self.assert_clean()

    def test_bytes_primitive_layer_is_exempt(self):
        # The checked-read plane itself reads raw integers by definition.
        self.tree.write("src/common/bytes.cpp", """
std::size_t ByteReader::read_len(ByteReader& r, Bytes& out) {
  std::uint32_t len = r.u32();
  out.resize(len);
  return len;
}
""")
        self.assert_clean()

    def test_suppression_with_reason_silences(self):
        self.tree.write("src/rtp/decode.cpp", """
void decode(ByteReader& r, Bytes& out) {
  std::uint32_t len = r.u32();
  // gmmcs-lint: allow(wire): len is re-checked by the caller's framing
  out.resize(len);
}
""")
        self.assert_clean()

    def test_suppression_without_reason_is_flagged_by_meta_rule(self):
        self.tree.write("src/rtp/decode.cpp", """
void decode(ByteReader& r, Bytes& out) {
  std::uint32_t len = r.u32();
  // gmmcs-lint: allow(wire)
  out.resize(len);
}
""")
        src = self.tree.sources()[0]
        meta = gmmcs_lint.check_suppression_reasons(src)
        self.assertEqual(self.rules(meta), ["suppression-reason"])


if __name__ == "__main__":
    unittest.main()
