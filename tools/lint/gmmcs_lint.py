#!/usr/bin/env python3
"""gmmcs-lint: multi-pass conformance analyzer for the Global-MMCS tree.

Global-MMCS is a bundle of protocol stacks (XGSP, H.323, SIP, broker
events, RTP, SOAP, RTSP) that interoperate through layered translation.
Three classes of latent cross-protocol bugs survive unit tests in such a
codebase: a silent layering violation (a lower layer reaching up), a
dropped Result from a wire-data parse, and an encode/decode asymmetry
that only bites when the *other* stack parses the bytes. This linter
makes all three machine-checked. Six passes share one compilation-
database loader and one suppression syntax:

  layering         every `#include "mod/..."` edge is checked against the
                   declared layer DAG
                       common
                         -> sim / transport / xml
                         -> broker / rtp / media
                         -> h323 / sip / xgsp / soap / streaming /
                            admire / baseline
                         -> core
                   Upward includes are errors; so is any cycle in the
                   actual module graph (same-layer edges are allowed as
                   long as they stay acyclic). New top-level src/ dirs
                   must be added to LAYERS or they are errors too.

  result-discipline  (1) every function returning Result<T> must be
                   declared [[nodiscard]]; (2) a call to a known
                   Result-returning parser/decoder must not be discarded
                   as an expression statement; (3) `.value()` needs a
                   dominating ok()-style check earlier in the same
                   function (conservative text dominance — suppress the
                   rare false positive with a reason).

  codec-symmetry   for each wire-message family the encode body's write
                   sequence (ByteWriter ops, helpers spliced, loops kept
                   as groups) must equal the decode body's read sequence.
                   Dispatch decoders (one switch over the tag byte) are
                   compared per-case against the encoder that writes that
                   tag. Text/XML codecs are checked by field coverage:
                   struct members written by serialize and members
                   assigned by parse must be the same set.

  switch-exhaustiveness  a switch over a message-kind enum (MessageType,
                   RasType, Q931Type, H245Type, MsgType) must either
                   cover every enumerator or carry a default that is
                   substantive (handles the rest, e.g. returns an error)
                   or commented with a reason. A bare `default: break;`
                   silently eats future enumerators.

  lock-order       tree-wide lock-acquisition graph built from the
                   GMMCS_CAPABILITY annotations: rank inversions against
                   the canonical LOCK_ORDER, acquisition cycles,
                   guarded-member access without the capability, condvar
                   waits without the lock, stale lock-order-calls
                   annotations (details at the pass, DESIGN.md §11).

  snapshot         epoch-snapshot immutability discipline (DESIGN.md
                   §12): snapshot types carry no mutable state, code
                   outside writer scopes holds only const handles to
                   them, and the atomic snapshot pointer is published
                   from writer scopes only (details at the pass).

Suppressions: a line (or the line directly above it) containing
`gmmcs-lint: allow(<rule>): <reason>` is exempt from <rule>. The reason
text is mandatory; an empty reason is itself reported (rule
`suppression-reason`). `allow(all)` exists for generated code only.

Usage:
  gmmcs_lint.py [--compile-commands build/compile_commands.json]
                [--root REPO_ROOT] [--passes layering,result,...]

Exit status 0 = clean, 1 = findings, 2 = usage error.
"""

import argparse
import json
import re
import sys
from pathlib import Path

# --------------------------------------------------------------------------
# Configuration (edit here when the tree grows).
# --------------------------------------------------------------------------

# Module -> layer rank. An include from module A to module B is legal iff
# rank(B) <= rank(A); ties are legal but must stay acyclic.
LAYERS = {
    "common": 0,
    "sim": 1,
    "transport": 1,
    "xml": 1,
    "broker": 2,
    "rtp": 2,
    "media": 2,
    "h323": 3,
    "sip": 3,
    "xgsp": 3,
    "soap": 3,
    "streaming": 3,
    "admire": 3,
    "baseline": 3,
    "core": 4,
}

# Message-kind enums whose switches must be exhaustive (or carry a
# justified default). Keyed by enumerator spelling, values are collected
# from the enum definitions found in src/.
MESSAGE_ENUMS = {"MessageType", "RasType", "Q931Type", "H245Type", "MsgType"}

# Function base names that (in this tree) only ever name Result-returning
# wire parsers: a discarded expression-statement call to one of these is
# always a bug.
RESULT_CALL_NAMES = {
    "decode", "parse", "from_xml", "parse_rtcp", "parse_envelope",
    "parse_contact", "parse_http_request", "parse_http_response",
}

# Binary codec families: files whose ByteWriter/ByteReader functions are
# paired and sequence-compared. Pairing is automatic: Class::encode or
# Class::serialize vs Class::decode or Class::parse; write_X vs read_X and
# encode_X vs decode_X helpers; and tag-dispatch decoders (a switch whose
# cases read) vs the encoder mentioning the same tag enumerator/constant.
BINARY_CODEC_FILES = [
    "src/broker/event.cpp",
    "src/h323/messages.cpp",
    "src/rtp/packet.cpp",
    "src/rtp/rtcp.cpp",
]

# Text/XML codec families, checked by member coverage. `structs` lists
# (header, struct-name) whose data members form the field universe;
# `encode`/`decode` name the paired functions in `impl`.
TEXT_CODEC_FAMILIES = [
    dict(name="sip-message", impl="src/sip/message.cpp",
         structs=[("src/sip/message.hpp", "SipMessage")],
         encode=["SipMessage::serialize"], decode=["SipMessage::parse"],
         # `user`/`host` belong to SipUri, parsed separately.
         ignore=set()),
    dict(name="sip-sdp", impl="src/sip/sdp.cpp",
         structs=[("src/sip/sdp.hpp", "Sdp"), ("src/sip/sdp.hpp", "SdpMedia")],
         encode=["Sdp::serialize"], decode=["Sdp::parse"],
         ignore=set()),
    dict(name="rtsp", impl="src/streaming/rtsp.cpp",
         structs=[("src/streaming/rtsp.hpp", "RtspMessage")],
         encode=["RtspMessage::serialize"], decode=["RtspMessage::parse"],
         ignore=set()),
    dict(name="xgsp-message", impl="src/xgsp/messages.cpp",
         structs=[("src/xgsp/messages.hpp", "Message")],
         encode=["Message::to_xml"], decode=["Message::from_xml"],
         ignore=set()),
]

MESSAGES = {
    "layering": "%s",
    "layering-cycle": "%s",
    "nodiscard": "Result-returning declaration '%s' is missing [[nodiscard]]",
    "discarded-result": "call to Result-returning '%s' discards its result",
    "unchecked-value": "%s",
    "codec-symmetry": "%s",
    "switch-exhaustive": "%s",
    "lock-order": "%s",
    "guarded-by": "%s",
    "condvar-hold": "%s",
    "snapshot-type": "%s",
    "snapshot-mutation": "%s",
    "snapshot-publication": "%s",
    "suppression-reason": "gmmcs-lint suppression without a reason "
                          "(write `gmmcs-lint: allow(rule): why`)",
}

# --------------------------------------------------------------------------
# Shared infrastructure.
# --------------------------------------------------------------------------

SUPPRESS_RE = re.compile(r"gmmcs-lint:\s*allow\(([a-z-]+)\)(?::?\s*(.*?))?\s*(?:\*/)?\s*$")


def strip_comments(lines):
    """Blanks //- and /* */-comments; suppressions are read from raw lines."""
    out = []
    in_block = False
    for line in lines:
        res = []
        i = 0
        while i < len(line):
            if in_block:
                end = line.find("*/", i)
                if end < 0:
                    i = len(line)
                else:
                    in_block = False
                    i = end + 2
            elif line.startswith("//", i):
                break
            elif line.startswith("/*", i):
                in_block = True
                i += 2
            else:
                res.append(line[i])
                i += 1
        out.append("".join(res))
    return out


class SourceFile:
    """A parsed source file: raw lines, comment-stripped lines and text."""

    def __init__(self, path, rel):
        self.path = path
        self.rel = rel
        self.raw = path.read_text().splitlines()
        self.code = strip_comments(self.raw)
        self.text = "\n".join(self.code)
        # Offsets of line starts in `text`, for offset -> line mapping.
        self.line_starts = [0]
        for line in self.code:
            self.line_starts.append(self.line_starts[-1] + len(line) + 1)

    def line_of(self, offset):
        lo, hi = 0, len(self.line_starts) - 1
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if self.line_starts[mid] <= offset:
                lo = mid
            else:
                hi = mid - 1
        return lo + 1  # 1-based

    def suppressed(self, lineno, rule):
        """True if 1-based `lineno` (or the line above) allows `rule`."""
        for look in (lineno - 1, lineno - 2):
            if look < 0 or look >= len(self.raw):
                continue
            m = SUPPRESS_RE.search(self.raw[look])
            if m and m.group(1) in (rule, "all"):
                return True
        return False


def check_suppression_reasons(src):
    """The meta-rule: every suppression must carry a reason."""
    findings = []
    for idx, line in enumerate(src.raw):
        m = SUPPRESS_RE.search(line)
        if m and not (m.group(2) or "").strip():
            findings.append((src.rel, idx + 1, "suppression-reason",
                             MESSAGES["suppression-reason"]))
    return findings


def collect_files(root, compile_commands):
    """src/ headers plus every src/ TU the build compiles (falls back to a
    directory walk when no database is available)."""
    src = root / "src"
    files = set(src.rglob("*.hpp")) | set(src.rglob("*.h"))
    used_db = False
    if compile_commands and compile_commands.is_file():
        try:
            db = json.loads(compile_commands.read_text())
            for entry in db:
                f = Path(entry["file"])
                if not f.is_absolute():
                    f = Path(entry.get("directory", ".")) / f
                f = f.resolve()
                if src.resolve() in f.parents and f.is_file():
                    files.add(f)
                    used_db = True
        except (json.JSONDecodeError, KeyError, OSError) as e:
            print(f"gmmcs-lint: warning: bad compilation database: {e}",
                  file=sys.stderr)
    if not used_db:
        files |= set(src.rglob("*.cpp"))
    return sorted(files)


def load_sources(root, files):
    out = []
    for f in files:
        rel = f.resolve().relative_to(root).as_posix()
        out.append(SourceFile(f, rel))
    return out


# --------------------------------------------------------------------------
# Pass 1: layering.
# --------------------------------------------------------------------------

INCLUDE_RE = re.compile(r'#\s*include\s*"([^"]+)"')


def pass_layering(sources, layers=None):
    layers = layers if layers is not None else LAYERS
    findings = []
    edges = {}  # (from_mod, to_mod) -> first (rel, lineno) seen
    for src in sources:
        parts = src.rel.split("/")
        if len(parts) < 3 or parts[0] != "src":
            continue
        mod = parts[1]
        if mod not in layers:
            findings.append((src.rel, 1, "layering",
                             f"module '{mod}' is not in the declared layer DAG "
                             f"(add it to LAYERS in gmmcs_lint.py)"))
            continue
        for idx, line in enumerate(src.code):
            for m in INCLUDE_RE.finditer(line):
                inc = m.group(1)
                if "/" not in inc:
                    continue
                to_mod = inc.split("/")[0]
                if to_mod not in layers:
                    continue  # not a src/ module include (e.g. generated)
                if to_mod == mod:
                    continue
                if src.suppressed(idx + 1, "layering"):
                    continue
                if layers[to_mod] > layers[mod]:
                    findings.append(
                        (src.rel, idx + 1, "layering",
                         f"upward include: layer-{layers[mod]} module '{mod}' "
                         f"includes layer-{layers[to_mod]} module '{to_mod}' "
                         f"(\"{inc}\")"))
                edges.setdefault((mod, to_mod), (src.rel, idx + 1))
    # Cycle detection over the actual module graph (covers same-layer ties).
    graph = {}
    for (a, b) in edges:
        graph.setdefault(a, set()).add(b)
    state = {}  # 0=visiting, 1=done
    stack = []

    def dfs(node):
        state[node] = 0
        stack.append(node)
        for nxt in sorted(graph.get(node, ())):
            if state.get(nxt) == 0:
                cycle = stack[stack.index(nxt):] + [nxt]
                rel, lineno = edges[(node, nxt)]
                findings.append((rel, lineno, "layering-cycle",
                                 "module cycle: " + " -> ".join(cycle)))
            elif nxt not in state:
                dfs(nxt)
        stack.pop()
        state[node] = 1

    for node in sorted(graph):
        if node not in state:
            dfs(node)
    return findings


# --------------------------------------------------------------------------
# Pass 2: result discipline.
# --------------------------------------------------------------------------

RESULT_DECL_RE = re.compile(
    r"^\s*(?P<nd>\[\[nodiscard\]\]\s+)?(?:static\s+)?(?:gmmcs::)?Result<")
DECL_NAME_RE = re.compile(r">\s*&?\s*(?P<name>[\w:]+)\s*\(")
VALUE_USE_RE = re.compile(r"\.\s*value\s*\(\s*\)")


def _decl_name(line):
    """Function name of a `Result<...> name(...)` line, or None."""
    # Find the matching '>' of the Result template argument list.
    start = line.find("Result<")
    depth = 0
    i = start + len("Result<") - 1
    while i < len(line):
        if line[i] == "<":
            depth += 1
        elif line[i] == ">":
            depth -= 1
            if depth == 0:
                break
        i += 1
    m = DECL_NAME_RE.match(line, i)
    return m.group("name") if m else None


def pass_result(sources, call_names=None):
    call_names = call_names if call_names is not None else RESULT_CALL_NAMES
    findings = []

    # Names declared Result-returning in headers: their .cpp definitions
    # need no repeated attribute (it lives on the first declaration).
    header_declared = set()
    for src in sources:
        if not src.rel.endswith((".hpp", ".h")):
            continue
        for line in src.code:
            if RESULT_DECL_RE.match(line):
                name = _decl_name(line)
                if name:
                    header_declared.add(name.split("::")[-1])

    for src in sources:
        is_header = src.rel.endswith((".hpp", ".h"))
        for idx, line in enumerate(src.code):
            m = RESULT_DECL_RE.match(line)
            if not m:
                continue
            name = _decl_name(line)
            if name is None:
                continue
            if not is_header:
                if "::" in name:
                    continue  # out-of-line member def; attribute is on the decl
                if name in header_declared:
                    continue  # free-function def; attribute is on the decl
            has_nd = bool(m.group("nd")) or "[[nodiscard]]" in src.code[idx - 1:idx]
            if not has_nd and not src.suppressed(idx + 1, "nodiscard"):
                findings.append((src.rel, idx + 1, "nodiscard",
                                 MESSAGES["nodiscard"] % name))

        # (2) discarded expression-statement calls to known parser names.
        discard_re = re.compile(
            r"^\s*(?:[A-Za-z_]\w*(?:::|\.|->))*(?P<name>"
            + "|".join(sorted(call_names)) + r")\s*\(")
        prev_code = ""
        for idx, line in enumerate(src.code):
            stripped = line.strip()
            if stripped:
                dm = discard_re.match(line)
                starts_statement = prev_code == "" or prev_code[-1] in ";{}:"
                if dm and starts_statement and not src.suppressed(idx + 1, "discarded-result"):
                    findings.append((src.rel, idx + 1, "discarded-result",
                                     MESSAGES["discarded-result"] % dm.group("name")))
                prev_code = stripped
        # (3) .value() without a dominating ok() check.
        findings.extend(_check_value_calls(src))
    return findings


def _function_span_start(src, lineno):
    """Crude function boundary: the line after the most recent column-0 `}`."""
    for j in range(lineno - 1, -1, -1):
        if src.code[j].startswith("}"):
            return j + 1
    return 0


def _value_receiver(code_line, col):
    """Receiver expression of a `.value()` at `col` (index of the dot).
    Returns (kind, name): kind 'var' for an identifier (possibly through
    std::move), 'chain' for a direct call chain like parse(x).value()."""
    i = col - 1
    while i >= 0 and code_line[i].isspace():
        i -= 1
    if i >= 0 and code_line[i] == ")":
        depth = 0
        while i >= 0:
            if code_line[i] == ")":
                depth += 1
            elif code_line[i] == "(":
                depth -= 1
                if depth == 0:
                    break
            i -= 1
        inner = code_line[i + 1:col].rstrip(") \t")
        j = i - 1
        while j >= 0 and (code_line[j].isalnum() or code_line[j] in "_:"):
            j -= 1
        callee = code_line[j + 1:i]
        if callee.endswith("move"):
            m = re.match(r"\s*([A-Za-z_]\w*)\s*$", inner)
            if m:
                return "var", m.group(1)
        return "chain", callee or "<expr>"
    j = i
    while j >= 0 and (code_line[j].isalnum() or code_line[j] == "_"):
        j -= 1
    name = code_line[j + 1:i + 1]
    return ("var", name) if name else ("chain", "<expr>")


def _check_value_calls(src):
    findings = []
    for idx, line in enumerate(src.code):
        for m in VALUE_USE_RE.finditer(line):
            lineno = idx + 1
            if src.suppressed(lineno, "unchecked-value"):
                continue
            kind, name = _value_receiver(line, m.start())
            if kind == "var" and name:
                start = _function_span_start(src, idx)
                span = "\n".join(src.code[start:idx + 1])
                guard = re.compile(
                    rf"\b{re.escape(name)}\s*\.\s*ok\s*\(\s*\)"
                    rf"|!\s*{re.escape(name)}\b"
                    rf"|(?:if|while)\s*\(\s*{re.escape(name)}\s*\)"
                    rf"|\(\s*{re.escape(name)}\s*&&|&&\s*{re.escape(name)}\b"
                    rf"|\b{re.escape(name)}\s*\?")
                if guard.search(span):
                    continue
                findings.append((src.rel, lineno, "unchecked-value",
                                 f"'{name}.value()' has no dominating "
                                 f"'{name}.ok()'-style check in this function"))
            else:
                findings.append((src.rel, lineno, "unchecked-value",
                                 f".value() chained directly onto '{name}(...)' "
                                 f"— bind the Result and check ok() first"))
    return findings


# --------------------------------------------------------------------------
# Pass 3: codec symmetry.
# --------------------------------------------------------------------------
#
# Binary codecs: we extract, for every function in a codec file, the
# ordered sequence of ByteWriter/ByteReader operations (u8/u16/u32/u64/
# lstr/str/raw/skip), with calls to sibling helper functions spliced in
# and loop bodies kept as nested groups:  ["u8", ["u32"], "lstr"] means
# u8, a repeated u32, then lstr. str/raw/skip normalize to "raw" (all are
# length-carried byte runs). Then we pair encoders with decoders and
# compare sequences; a mismatch is wire drift.

OP_NORMALIZE = {"u8": "u8", "u16": "u16", "u32": "u32", "u64": "u64",
                "lstr": "lstr", "str": "raw", "raw": "raw", "skip": "raw"}

FUNC_HEAD_RE = re.compile(
    r"(?:^|\n)\s*(?:template\s*<[^>]*>\s*)?"
    r"(?P<head>[A-Za-z_][\w:<>,&*\s\[\]]*?)\s*"
    r"\(", re.S)


def _extract_functions(text):
    """Yields (name, params, body, offset) for every function definition.

    Walks the text tracking brace depth; `namespace X {` is transparent,
    class/struct/enum bodies are skipped (methods defined inline in codec
    files are not a thing here). A function is a top-level `... name(args)
    [const] {` with a balanced body."""
    funcs = []
    i, n = 0, len(text)
    depth = 0
    while i < n:
        c = text[i]
        if c == "{":
            # Look backwards for what opened this brace.
            seg_start = max(text.rfind(";", 0, i), text.rfind("}", 0, i),
                            text.rfind("{", 0, i)) + 1
            seg = text[seg_start:i]
            if re.search(r"\b(namespace)\b", seg):
                depth += 0  # transparent: descend
                i += 1
                continue
            if re.search(r"\b(struct|class|enum|union)\b", seg) and "(" not in seg:
                i = _skip_braces(text, i)
                continue
            pm = re.search(r"([\w:~]+)\s*\(", seg)
            if pm and not re.search(r"\b(if|for|while|switch|return|catch)\s*\($",
                                    seg[:pm.end()]):
                name = pm.group(1)
                close = _matching_paren(text, seg_start + pm.end() - 1)
                params = text[seg_start + pm.end():close] if close > 0 else ""
                end = _skip_braces(text, i)
                funcs.append((name, params, text[i + 1:end - 1], i))
                i = end
                continue
            i += 1
        else:
            i += 1
    return funcs


def _matching_paren(text, open_idx):
    depth = 0
    for i in range(open_idx, len(text)):
        if text[i] == "(":
            depth += 1
        elif text[i] == ")":
            depth -= 1
            if depth == 0:
                return i
    return -1


def _skip_braces(text, open_idx):
    depth = 0
    for i in range(open_idx, len(text)):
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth == 0:
                return i + 1
    return len(text)


def _io_vars(params, body, cls):
    """Names of ByteWriter/ByteReader variables visible in a function."""
    names = set()
    for m in re.finditer(rf"\b{cls}\s*&?\s*([A-Za-z_]\w*)", params):
        names.add(m.group(1))
    for m in re.finditer(rf"\b{cls}\s+([A-Za-z_]\w*)\s*[;({{]", body):
        names.add(m.group(1))
    return names


def _cond_key(cond):
    """Stable identity of a flag-guard condition: the sorted k-constants it
    mentions (`flags & kHasExt` == `m.flags & kHasExt`), else the condition
    with whitespace squeezed out."""
    consts = sorted(set(re.findall(r"\bk[A-Z]\w*", cond)))
    return ",".join(consts) if consts else re.sub(r"\s+", "", cond)


def _extract_seq(body, io_names, helpers):
    """Nested op sequence of `body`. Loops become sub-lists; flag-guarded
    `if` (and `else`) bodies that perform ops become ("cond", key, ops)
    groups, so `if (flags & kHasExt) w.u32(ext)` on the encode side is
    symmetric with `if (flags & kHasExt) ext = r.u32()` on the decode side
    — same guard key, same ops — regardless of how each side spells the
    flags expression."""
    tokens = []
    io_alt = "|".join(sorted(io_names)) if io_names else r"(?!x)x"
    helper_alt = "|".join(sorted(helpers)) if helpers else r"(?!x)x"
    tok_re = re.compile(
        rf"\b(?P<io>{io_alt})\s*\.\s*(?P<op>u8|u16|u32|u64|lstr|str|raw|skip)\s*\("
        rf"|\b(?P<helper>{helper_alt})\s*\("
        rf"|\b(?P<loop>for|while)\s*\("
        rf"|\b(?P<cond>if)\s*\(")

    def branch_extent(after_close):
        j = after_close
        while j < len(body) and body[j].isspace():
            j += 1
        if j < len(body) and body[j] == "{":
            end = _skip_braces(body, j)
            return body[j + 1:end - 1], end
        end = body.find(";", j) + 1 or len(body)
        return body[j:end], end

    i = 0
    while i < len(body):
        m = tok_re.search(body, i)
        if not m:
            break
        if m.group("op"):
            tokens.append(OP_NORMALIZE[m.group("op")])
            i = m.end()
        elif m.group("helper"):
            tokens.append(("call", m.group("helper")))
            i = m.end()
        elif m.group("loop"):  # loop: wrap the body extent in a group
            close = _matching_paren(body, body.index("(", m.start()))
            if close < 0:
                i = m.end()
                continue
            inner, end = branch_extent(close + 1)
            group = _extract_seq(inner, io_names, helpers)
            if group:
                tokens.append(group)
            i = end
        else:  # if: ops inside become a keyed conditional group
            open_idx = body.index("(", m.start())
            close = _matching_paren(body, open_idx)
            if close < 0:
                i = m.end()
                continue
            cond = body[open_idx + 1:close]
            # Ops in the condition itself (`if (r.u8() != kTag) ...`)
            # always execute: they stay flat, before any group.
            tokens.extend(_extract_seq(cond, io_names, helpers))
            inner, end = branch_extent(close + 1)
            group = _extract_seq(inner, io_names, helpers)
            key = _cond_key(cond)
            if group:
                tokens.append(("cond", key, group))
            # An `else` branch with ops is its own group under the negated
            # key (an `else if` re-enters the `if` handling naturally).
            em = re.match(r"\s*else\b(?!\s*if\b)", body[end:])
            if em:
                e_inner, end = branch_extent(end + em.end())
                e_group = _extract_seq(e_inner, io_names, helpers)
                if e_group:
                    tokens.append(("cond", "!" + key, e_group))
            i = end
    return tokens


def _splice(seq, seqs_by_name, active=()):
    """Resolves ("call", helper) markers into the helper's own sequence."""
    out = []
    for tok in seq:
        if isinstance(tok, list):
            out.append(_splice(tok, seqs_by_name, active))
        elif isinstance(tok, tuple) and tok[0] == "cond":
            out.append(("cond", tok[1],
                        _splice(tok[2], seqs_by_name, active)))
        elif isinstance(tok, tuple):
            name = tok[1]
            if name in active:  # recursion guard
                continue
            out.extend(_splice(seqs_by_name.get(name, []), seqs_by_name,
                               active + (name,)))
        else:
            out.append(tok)
    return out


def _fmt_seq(seq):
    parts = []
    for tok in seq:
        if isinstance(tok, list):
            parts.append(f"[{_fmt_seq(tok)}]*")
        elif isinstance(tok, tuple) and tok[0] == "cond":
            parts.append(f"if<{tok[1]}>[{_fmt_seq(tok[2])}]")
        else:
            parts.append(tok)
    return " ".join(parts)


CASE_RE = re.compile(r"\bcase\s+(?:[\w:]+::)?(\w+)\s*:")


def _split_dispatch(body):
    """For a tag-dispatch decoder: (prefix_text, {label: case_text}) or None.

    A dispatch decoder reads a tag then switches on it, reading fields in
    the cases. Returns None when the body has no switch (or the switch
    reads nothing — a validation switch, not a dispatch)."""
    m = re.search(r"\bswitch\s*\(", body)
    if not m:
        return None
    close = _matching_paren(body, body.index("(", m.start()))
    j = body.find("{", close)
    if j < 0:
        return None
    end = _skip_braces(body, j)
    switch_body = body[j + 1:end - 1]
    prefix = body[:m.start()]
    cases = {}
    pending = []
    pos = 0
    segments = []  # (labels, text)
    for cm in CASE_RE.finditer(switch_body):
        if pending and switch_body[pos:cm.start()].strip(" \n"):
            segments.append((pending, switch_body[pos:cm.start()]))
            pending = []
        pending.append(cm.group(1))
        pos = cm.end()
    dm = re.search(r"\bdefault\s*:", switch_body[pos:])
    tail_end = pos + dm.start() if dm else len(switch_body)
    if pending:
        segments.append((pending, switch_body[pos:tail_end]))
    for labels, text in segments:
        for lab in labels:
            cases[lab] = text
    return prefix, cases


def pass_codec_symmetry(sources, codec_files=None, text_families=None):
    codec_files = codec_files if codec_files is not None else BINARY_CODEC_FILES
    text_families = text_families if text_families is not None else TEXT_CODEC_FAMILIES
    findings = []
    by_rel = {s.rel: s for s in sources}
    for rel in codec_files:
        src = by_rel.get(rel)
        if src is None:
            continue
        findings.extend(_check_binary_codec(src))
    for fam in text_families:
        findings.extend(_check_text_codec(by_rel, fam))
    return findings


def _check_binary_codec(src):
    findings = []
    funcs = _extract_functions(src.text)
    names = [f[0] for f in funcs]
    helper_names = {n for n in names if "::" not in n}

    writer_seqs, reader_seqs = {}, {}
    raw_seqs = {}
    offsets = {}
    bodies = {}
    for name, params, body, off in funcs:
        wr = _io_vars(params, body, "ByteWriter")
        rd = _io_vars(params, body, "ByteReader")
        offsets[name] = off
        bodies[name] = body
        if wr:
            raw_seqs[name] = _extract_seq(body, wr, helper_names)
            writer_seqs[name] = raw_seqs[name]
        elif rd:
            raw_seqs[name] = _extract_seq(body, rd, helper_names)
            reader_seqs[name] = raw_seqs[name]

    def resolved(name):
        return _splice(raw_seqs.get(name, []), raw_seqs)

    def report(where, enc, dec, enc_seq, dec_seq):
        lineno = src.line_of(offsets.get(where, 0))
        if src.suppressed(lineno, "codec-symmetry"):
            return
        findings.append(
            (src.rel, lineno, "codec-symmetry",
             f"encode/decode drift for {enc} vs {dec}: "
             f"write seq [{_fmt_seq(enc_seq)}] != read seq [{_fmt_seq(dec_seq)}]"))

    # --- method pairs: Class::{encode,serialize} vs Class::{decode,parse} ---
    paired_decoders = set()
    for name in writer_seqs:
        if "::" not in name:
            continue
        cls = name.rsplit("::", 1)[0]
        for dec_suffix in ("decode", "parse"):
            dec = f"{cls}::{dec_suffix}"
            if dec in reader_seqs:
                enc_seq, dec_seq = resolved(name), resolved(dec)
                if enc_seq and dec_seq and enc_seq != dec_seq:
                    report(dec, name, dec, enc_seq, dec_seq)
                paired_decoders.add(dec)

    # --- helper pairs: write_X/read_X, encode_X/decode_X ---
    for name in writer_seqs:
        for w_pre, r_pre in (("write_", "read_"), ("encode_", "decode_")):
            if name.startswith(w_pre):
                dec = r_pre + name[len(w_pre):]
                if dec in reader_seqs:
                    enc_seq, dec_seq = resolved(name), resolved(dec)
                    if enc_seq != dec_seq:
                        report(dec, name, dec, enc_seq, dec_seq)
                    paired_decoders.add(dec)

    # --- dispatch decoders: per-case comparison against tag encoders ---
    for dec_name, seq in reader_seqs.items():
        if dec_name in paired_decoders:
            continue
        split = _split_dispatch(bodies[dec_name])
        if split is None:
            continue
        prefix_text, cases = split
        rd = _io_vars("", bodies[dec_name], "ByteReader") or \
            _io_vars(next(p for n, p, b, o in funcs if n == dec_name),
                     bodies[dec_name], "ByteReader")
        case_seqs = {lab: _splice(_extract_seq(text, rd, helper_names), raw_seqs)
                     for lab, text in cases.items()}
        if not any(case_seqs.values()):
            continue  # validation switch, not a dispatch decoder
        prefix_seq = _splice(_extract_seq(prefix_text, rd, helper_names), raw_seqs)
        # Pair each encoder with the tags its body mentions.
        for enc_name in writer_seqs:
            tags = set(re.findall(r"\b(?:[\w:]+::)?(k\w+)\b", bodies[enc_name]))
            hit = sorted(tags & set(case_seqs))
            for tag in hit:
                enc_seq = resolved(enc_name)
                want = prefix_seq + case_seqs[tag]
                if enc_seq and enc_seq != want:
                    report(dec_name, f"{enc_name} (tag {tag})", dec_name,
                           enc_seq, want)
    return findings


MEMBER_DECL_RE = re.compile(
    r"^\s*(?!return\b|using\b|static\b|friend\b|typedef\b|public|private|protected)"
    r"[\w:<>,\s&*]+?[\s&*](\w+)\s*(?:=[^;]*|\{[^;]*\})?;\s*$")


def _struct_members(src, struct):
    """Data-member names of `struct` as declared in `src`."""
    m = re.search(rf"\b(?:struct|class)\s+{struct}\b[^;{{]*\{{", src.text)
    if not m:
        return set()
    end = _skip_braces(src.text, src.text.index("{", m.start()))
    body = src.text[m.start():end]
    members = set()
    for line in body.splitlines():
        if "(" in line or ")" in line:
            continue
        dm = MEMBER_DECL_RE.match(line)
        if dm:
            members.add(dm.group(1))
    return members


def _check_text_codec(by_rel, fam):
    impl = by_rel.get(fam["impl"])
    if impl is None:
        return []
    members = set()
    for header_rel, struct in fam["structs"]:
        hdr = by_rel.get(header_rel)
        if hdr is not None:
            members |= _struct_members(hdr, struct)
    members -= set(fam.get("ignore", ()))
    if not members:
        return []
    funcs = {n: (b, o) for n, p, b, o in _extract_functions(impl.text)}

    def gather(fn_names, pattern_fn):
        got = set()
        for fn in fn_names:
            if fn not in funcs:
                continue
            body = funcs[fn][0]
            got |= pattern_fn(body)
        return got

    written = gather(fam["encode"],
                     lambda body: {w for w in members
                                   if re.search(rf"\b{re.escape(w)}\b", body)})
    assigned = gather(fam["decode"],
                      lambda body: {w for w in members if re.search(
                          rf"\b\w+\s*\.\s*{re.escape(w)}\s*"
                          rf"(?:=[^=]|\.push_back|\.emplace_back)", body)})
    findings = []
    anchor_fn = fam["decode"][0]
    lineno = impl.line_of(funcs[anchor_fn][1]) if anchor_fn in funcs else 1
    if impl.suppressed(lineno, "codec-symmetry"):
        return []
    for field in sorted(written - assigned):
        findings.append((impl.rel, lineno, "codec-symmetry",
                         f"{fam['name']}: field '{field}' is serialized by "
                         f"{'/'.join(fam['encode'])} but never assigned by "
                         f"{'/'.join(fam['decode'])} (lost on round-trip)"))
    for field in sorted(assigned - written):
        findings.append((impl.rel, lineno, "codec-symmetry",
                         f"{fam['name']}: field '{field}' is parsed by "
                         f"{'/'.join(fam['decode'])} but never written by "
                         f"{'/'.join(fam['encode'])} (phantom field)"))
    return findings


# --------------------------------------------------------------------------
# Pass 4: switch exhaustiveness.
# --------------------------------------------------------------------------

ENUM_DEF_RE = re.compile(r"\benum\s+class\s+(\w+)[^{;]*\{")
ENUMERATOR_RE = re.compile(r"^\s*(k\w+)\s*(?:=[^,}]*)?[,}]?", re.M)


def collect_enums(sources, wanted=None):
    wanted = wanted if wanted is not None else MESSAGE_ENUMS
    enums = {}
    for src in sources:
        for m in ENUM_DEF_RE.finditer(src.text):
            name = m.group(1)
            if name not in wanted:
                continue
            end = _skip_braces(src.text, src.text.index("{", m.start()))
            body = src.text[src.text.index("{", m.start()) + 1:end - 1]
            vals = []
            for line in body.splitlines():
                em = ENUMERATOR_RE.match(line)
                if em:
                    vals.append(em.group(1))
            if vals:
                enums[name] = vals
    return enums


def pass_switch_exhaustiveness(sources, enums=None):
    if enums is None:
        enums = collect_enums(sources)
    findings = []
    for src in sources:
        for m in re.finditer(r"\bswitch\s*\(", src.text):
            close = _matching_paren(src.text, src.text.index("(", m.start()))
            j = src.text.find("{", close)
            if j < 0:
                continue
            end = _skip_braces(src.text, j)
            body = src.text[j + 1:end - 1]
            labels = set(CASE_RE.findall(body))
            if not labels:
                continue
            # Which configured enum is this switch over? The one whose
            # enumerator set contains every label.
            owner = None
            for ename, vals in enums.items():
                if labels <= set(vals):
                    owner = ename
                    break
            if owner is None:
                continue
            lineno = src.line_of(m.start())
            if src.suppressed(lineno, "switch-exhaustive"):
                continue
            missing = [v for v in enums[owner] if v not in labels]
            if not missing:
                continue
            dm = re.search(r"\bdefault\s*:", body)
            if not dm:
                findings.append(
                    (src.rel, lineno, "switch-exhaustive",
                     f"switch over {owner} misses enumerators "
                     f"{', '.join(missing)} and has no default"))
                continue
            # Default present: it must be substantive (more than `break;`)
            # or carry a comment explaining why the rest is ignorable.
            default_body = body[dm.end():]
            nxt = CASE_RE.search(default_body)
            if nxt:
                default_body = default_body[:nxt.start()]
            code_only = strip_comments(default_body.splitlines())
            substance = "".join(code_only).replace("break;", "").strip(" \n\t}")
            # Raw text (with comments) for the reason check: find the raw
            # region via line numbers.
            start_line = src.line_of(j + 1 + dm.start())
            end_line = min(start_line + len(default_body.splitlines()) + 1,
                           len(src.raw))
            raw_region = "\n".join(src.raw[start_line - 1:end_line])
            has_comment = "//" in raw_region or "/*" in raw_region
            if not substance and not has_comment:
                findings.append(
                    (src.rel, lineno, "switch-exhaustive",
                     f"switch over {owner} misses {', '.join(missing)} behind a "
                     f"bare `default: break;` — handle them or comment why "
                     f"they are ignorable"))
    return findings


# --------------------------------------------------------------------------
# Pass 5: lock order.
# --------------------------------------------------------------------------
#
# The tree's concurrency discipline is annotation-driven (common/mutex.hpp):
# capability classes are declared with GMMCS_CAPABILITY, state carries
# GMMCS_GUARDED_BY, functions carry GMMCS_REQUIRES, and scopes take
# capabilities via MutexLock / .lock() / ExecContext::assert_held(). This
# pass builds the inter-procedural lock-acquisition graph from those
# annotations and rejects three bug classes clang's per-TU analysis cannot
# see tree-wide:
#
#   lock-order    A *blocking* acquisition (MutexLock scope, `.lock()`,
#                 a call into a GMMCS_ACQUIRE function) performed while
#                 another capability is held creates a directed edge
#                 held -> acquired, including transitively through calls
#                 (a function's may-acquire set propagates to callers that
#                 invoke it with something held; callback indirection is
#                 recorded with `gmmcs-lint: lock-order-calls(F, G)`).
#                 Any cycle in this graph is a potential deadlock; any
#                 edge that runs against the canonical LOCK_ORDER below is
#                 an inversion waiting for a second thread.
#                 ExecContext::assert_held() is NOT an acquisition (it
#                 blocks nothing), so mutual entry between two contexts on
#                 one serial lane — the BrokerNetwork <-> BrokerNode
#                 pattern — creates no edge and no false cycle.
#
#   guarded-by    Reading or writing a GMMCS_GUARDED_BY(cap) member in a
#                 function that neither holds `cap` at that point (via
#                 REQUIRES, an enclosing MutexLock/.lock(), or a prior
#                 assert_held()) nor is the owning class's constructor/
#                 destructor.
#
#   condvar-hold  `cv.wait(cap, ...)` in a scope that does not hold `cap`.
#
# Capabilities are matched by base name (`pool_mu_` in `loop.pool_mu_`):
# loose, but instance names are unique in this tree and the looseness is
# what lets REQUIRES(ctx_) in a header match `ctx_.assert_held()` in the
# TU. Lambdas are separate analysis scopes (clang analyzes them that way
# too): a lambda body holds only what its own head REQUIRES or its own
# body asserts/locks, and its acquisitions do not leak into the enclosing
# function's may-acquire set (they run when invoked, not here).

# Canonical tree-wide lock order, outermost first (DESIGN.md §11). Every
# capability *instance* found in src/ must appear here (completeness is
# checked, like LAYERS), and every acquisition edge must run left to
# right. EventLoop::pool_mu_ is the only blocking mutex in the tree and
# must stay the leaf: nothing may be acquired while it is held.
LOCK_ORDER = [
    "BrokerNetwork::ctx_",
    "BrokerNode::ctx_",
    "ServiceCenter::ctx_",
    "Network::ctx_",
    "Host::ctx_",
    "EventLoop::pool_mu_",
]

# Files that *define* the capability primitives; their members (e.g. the
# pthread handle inside Mutex) are not capability instances to rank.
LOCK_PRIMITIVE_FILES = {"src/common/mutex.hpp"}

CAPABILITY_CLASS_RE = re.compile(r"\b(?:class|struct)\s+GMMCS_CAPABILITY\s*\(")
CLASS_HEAD_RE = re.compile(
    r"\b(?:class|struct)\s+(?:GMMCS_CAPABILITY\s*\([^)]*\)\s+)?"
    r"(?!GMMCS_)(\w+)(?:\s+final)?[^;{}()=]*\{")
LOCK_CALLS_RE = re.compile(
    r"gmmcs-lint:\s*lock-order-calls\(\s*([\w:~]+)\s*,\s*([\w:~]+)\s*\)")


def _scan_classes(text):
    """Yields (class_name, body_start, body_end, is_capability) for every
    class/struct definition (including nested) in `text`."""
    out = []
    for m in CLASS_HEAD_RE.finditer(text):
        head = m.group(0)
        if re.search(r"\benum\s+(?:class|struct)\b", text[max(0, m.start() - 8):m.end()]):
            continue
        open_idx = m.end() - 1
        end = _skip_braces(text, open_idx)
        out.append((m.group(1), open_idx + 1, end - 1,
                    bool(CAPABILITY_CLASS_RE.search(head))))
    return out


FUNC_SIG_RE = re.compile(
    r"(?P<name>(?:\w+::)*~?\w+)\s*\((?P<params>(?:[^()]|\([^()]*\))*)\)\s*"
    r"(?P<annos>(?:const|noexcept|final|override|->\s*[\w:<>]+|"
    r"GMMCS_\w+\s*\([^()]*\)|\s)*)$", re.S)

FUNC_KEYWORDS = {"if", "for", "while", "switch", "return", "catch", "do",
                 "sizeof", "decltype", "static_assert", "alignas", "new",
                 "delete", "throw", "assert"}


def _extract_functions_ctx(text, base_offset=0, cls=None):
    """Yields (cls, name, annos_text, body, body_offset) for every function
    definition in `text`, recursing into class bodies (unlike
    _extract_functions, which skips them — inline methods matter here).

    `annos_text` is everything between the closing param paren and the
    opening brace: const, GMMCS_REQUIRES(...), ctor init lists."""
    funcs = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c != "{":
            i += 1
            continue
        seg_start = max(text.rfind(";", 0, i), text.rfind("}", 0, i),
                        text.rfind("{", 0, i)) + 1
        seg = text[seg_start:i]
        if re.search(r"\bnamespace\b", seg):
            i += 1
            continue
        cm = CLASS_HEAD_RE.search(seg + "{")
        if cm and cm.end() == len(seg) + 1:
            end = _skip_braces(text, i)
            funcs.extend(_extract_functions_ctx(
                text[i + 1:end - 1], base_offset + i + 1, cm.group(1)))
            i = end
            continue
        if re.search(r"\b(?:struct|class|enum|union)\b[^()]*$", seg):
            # Non-capability plain aggregate (or enum): no methods inside
            # that we'd mis-parse; still recurse for nested structs with
            # methods — handled by the CLASS_HEAD_RE branch above. Enums
            # have no functions: skip.
            if re.search(r"\benum\b", seg):
                i = _skip_braces(text, i)
                continue
        # A function definition: `... name(params) [annos] {`
        # Find the param list by scanning back from the brace.
        m = FUNC_SIG_RE.search(seg)
        if m and m.group("name") not in FUNC_KEYWORDS \
                and not m.group("name").startswith("GMMCS_"):
            # Ctor init lists look like `Name(...) : a_(x), b_(y) {` — the
            # FUNC_SIG_RE above fails on the `:` tail, so retry on the text
            # before the first top-level `:` that isn't `::`.
            end = _skip_braces(text, i)
            funcs.append((cls, m.group("name"), m.group("annos") or "",
                          text[i + 1:end - 1], base_offset + i + 1))
            i = end
            continue
        # Ctor with init list: split at the `:` and retry.
        colon = _init_list_split(seg)
        if colon >= 0:
            m2 = FUNC_SIG_RE.search(seg[:colon])
            if m2 and m2.group("name") not in FUNC_KEYWORDS:
                end = _skip_braces(text, i)
                funcs.append((cls, m2.group("name"),
                              (m2.group("annos") or "") + seg[colon:],
                              text[i + 1:end - 1], base_offset + i + 1))
                i = end
                continue
        i += 1
    return funcs


def _init_list_split(seg):
    """Index of a ctor init-list `:` in `seg` (not `::`, not inside parens),
    scanning left to right after the last `)`. -1 if none."""
    depth = 0
    i = 0
    n = len(seg)
    while i < n:
        c = seg[i]
        if c == "(":
            depth += 1
        elif c == ")":
            depth -= 1
        elif c == ":" and depth == 0:
            if i + 1 < n and seg[i + 1] == ":":
                i += 2
                continue
            if i > 0 and seg[i - 1] == ":":
                i += 1
                continue
            return i
        i += 1
    return -1


def _enclosing_scope_end(body, pos):
    """End offset (exclusive) of the innermost `{...}` scope containing
    `pos` in `body` — the extent of a scoped MutexLock declared at `pos`."""
    depth = 0
    for i in range(pos, len(body)):
        c = body[i]
        if c == "{":
            depth += 1
        elif c == "}":
            if depth == 0:
                return i
            depth -= 1
    return len(body)


LAMBDA_HEAD_RE = re.compile(
    r"\[[^\[\]]*\]\s*(?:\((?:[^()]|\([^()]*\))*\)\s*)?"
    r"(?P<annos>(?:mutable|noexcept|constexpr|->\s*[\w:<>]+|"
    r"GMMCS_\w+\s*\([^()]*\)|\s)*)\{")


def _split_lambdas(body, base_offset):
    """Carves lambda bodies out of `body`. Returns (outer, lambdas) where
    `outer` is `body` with lambda bodies blanked (length-preserving) and
    `lambdas` is a list of (annos_text, lambda_body, abs_offset)."""
    lambdas = []
    out = list(body)
    pos = 0
    while True:
        m = LAMBDA_HEAD_RE.search("".join(out), pos)
        if not m:
            break
        open_idx = m.end() - 1
        end = _skip_braces(body, open_idx)
        inner = body[open_idx + 1:end - 1]
        sub_outer, sub_lams = _split_lambdas(inner, base_offset + open_idx + 1)
        lambdas.append((m.group("annos") or "", sub_outer,
                        base_offset + open_idx + 1))
        lambdas.extend(sub_lams)
        for i in range(open_idx + 1, end - 1):
            if out[i] not in "\n":
                out[i] = " "
        pos = end
    return "".join(out), lambdas


def _base_cap(expr):
    """Base name of a capability expression: `loop.pool_mu_` -> `pool_mu_`,
    `this->ctx_` -> `ctx_`, `ctx_` -> `ctx_`, `*mu` -> `mu`."""
    expr = expr.strip().lstrip("*&").strip()
    expr = re.sub(r"\(\)$", "", expr)
    for sep in ("->", "."):
        if sep in expr:
            expr = expr.rsplit(sep, 1)[1]
    return expr.strip()


REQUIRES_RE = re.compile(r"GMMCS_(?:REQUIRES|ASSERT_CAPABILITY)\s*\(([^()]*)\)")
ACQUIRE_ANNO_RE = re.compile(r"GMMCS_ACQUIRE\s*\(([^()]*)\)")
GUARDED_RE = re.compile(
    r"^[^=/{}()]*[\s&*>](?P<member>\w+)\s*GMMCS_GUARDED_BY\s*\("
    r"(?P<cap>[^()]*)\)", re.M)
MUTEXLOCK_RE = re.compile(r"\bMutexLock\s+\w+\s*[({]\s*([^(){}]+?)\s*[)}]\s*;")
LOCK_CALL_RE = re.compile(r"\b([\w.\->]+?)\s*\.\s*lock\s*\(\s*\)")
ASSERT_HELD_RE = re.compile(r"\b([\w.\->]+?)\s*\.\s*assert_held\s*\(\s*\)")
CV_WAIT_RE = re.compile(r"\b[\w.\->]*?(\w+)\s*\.\s*wait\s*\(\s*([^,()]+)")
DECL_ANNO_RE = re.compile(
    r"(~?\w+)\s*\(((?:[^();]|\([^()]*\))*)\)\s*(?:const\s*)?"
    r"((?:GMMCS_\w+\s*\([^()]*\)\s*)+);", re.S)


class _LockModel:
    """Tree-wide model: capability classes, instances, guards, functions."""

    def __init__(self):
        self.cap_classes = set()       # class names declared GMMCS_CAPABILITY
        self.instances = {}            # (owner_cls, cap base) -> (rel, lineno)
        self.guards = {}               # member name -> {owner_cls: cap base}
        self.decl_requires = {}        # "Cls::fn" / "fn" -> set of cap bases
        self.decl_acquires = {}        # same, from GMMCS_ACQUIRE on decls
        self.extra_calls = {}          # fn key -> set of fn keys (lock-order-calls)
        self.extra_call_sites = []     # (src, lineno, caller, callee) per annotation
        self.functions = []            # (src, cls, name, annos, body, offset)


def _collect_model(sources, primitive_files):
    model = _LockModel()
    # Round 1: capability classes (they can be declared anywhere).
    for src in sources:
        for name, b0, b1, is_cap in _scan_classes(src.text):
            if is_cap:
                model.cap_classes.add(name)
    cap_alt = "|".join(sorted(model.cap_classes)) or r"(?!x)x"
    inst_re = re.compile(
        rf"^\s*(?:mutable\s+)?(?:gmmcs::)?(?:common::)?(?:{cap_alt})\s+"
        rf"(\w+)\s*(?:=[^;]*|\{{[^;]*\}})?\s*;", re.M)
    for src in sources:
        # lock-order-calls annotations live in raw comments.
        for idx, line in enumerate(src.raw):
            m = LOCK_CALLS_RE.search(line)
            if m:
                model.extra_calls.setdefault(m.group(1), set()).add(m.group(2))
                model.extra_call_sites.append(
                    (src, idx + 1, m.group(1), m.group(2)))
        for cls, b0, b1, is_cap in _scan_classes(src.text):
            body = src.text[b0:b1]
            # Capability instances: cap-typed members of non-primitive files.
            if src.rel not in primitive_files:
                for im in inst_re.finditer(body):
                    model.instances[(cls, im.group(1))] = (
                        src.rel, src.line_of(b0 + im.start(1)))
            # Guarded members.
            for gm in GUARDED_RE.finditer(body):
                model.guards.setdefault(gm.group("member"), {})[cls] = \
                    _base_cap(gm.group("cap"))
            # Declaration-only REQUIRES/ACQUIRE (prototypes ending in `;`).
            for dm in DECL_ANNO_RE.finditer(body):
                fname, annos = dm.group(1), dm.group(3)
                key = f"{cls}::{fname}"
                reqs = {_base_cap(a) for a in REQUIRES_RE.findall(annos)}
                acqs = {_base_cap(a) for a in ACQUIRE_ANNO_RE.findall(annos)}
                if reqs:
                    model.decl_requires.setdefault(key, set()).update(reqs)
                if acqs:
                    model.decl_acquires.setdefault(key, set()).update(acqs)
        for cls, name, annos, body, off in _extract_functions_ctx(src.text):
            model.functions.append((src, cls, name, annos, body, off))
    return model


def _fn_keys(cls, name):
    keys = [name]
    if "::" in name:
        keys.append(name.rsplit("::", 1)[1])
        return [name, name.rsplit("::", 1)[1]]
    if cls:
        keys.insert(0, f"{cls}::{name}")
    return keys


def _scope_events(body):
    """Acquisition/hold events in a (lambda-blanked) function body.

    Returns (holds, acquires, waits, accesses):
      holds    — list of (cap, start, end) intervals where cap is held
                 (MutexLock scope, .lock() to end, assert_held to end)
      acquires — list of (cap, pos, blocking) acquisition events
      waits    — list of (cv_cap_expr, pos) from CondVar .wait(cap, ...)
    """
    holds = []
    acquires = []
    waits = []
    for m in MUTEXLOCK_RE.finditer(body):
        cap = _base_cap(m.group(1))
        end = _enclosing_scope_end(body, m.start())
        holds.append((cap, m.end(), end))
        acquires.append((cap, m.start(), True))
    for m in LOCK_CALL_RE.finditer(body):
        cap = _base_cap(m.group(1))
        holds.append((cap, m.end(), len(body)))
        acquires.append((cap, m.start(), True))
    for m in ASSERT_HELD_RE.finditer(body):
        cap = _base_cap(m.group(1))
        holds.append((cap, m.end(), len(body)))
        # assert_held is NOT an acquisition: it blocks nothing.
    for m in CV_WAIT_RE.finditer(body):
        waits.append((_base_cap(m.group(2)), m.start()))
    return holds, acquires, waits


def pass_lock_order(sources, lock_order=None, primitive_files=None):
    lock_order = lock_order if lock_order is not None else LOCK_ORDER
    primitive_files = (primitive_files if primitive_files is not None
                       else LOCK_PRIMITIVE_FILES)
    findings = []
    model = _collect_model(sources, primitive_files)

    rank = {}
    base_counts = {}
    for qual in lock_order:
        base_counts[qual.rsplit("::", 1)[-1]] = \
            base_counts.get(qual.rsplit("::", 1)[-1], 0) + 1
    for i, qual in enumerate(lock_order):
        rank[qual] = i
        base = qual.rsplit("::", 1)[-1]
        if base_counts[base] == 1:  # unique base name: allow bare lookup
            rank.setdefault(base, i)

    # cap base -> owning classes; used to qualify a bare name when the
    # scope's own class doesn't define it (unique owner) or to leave it
    # bare (ambiguous — rank lookup then falls back to the base name).
    owners_of = {}
    for (owner, cap) in model.instances:
        owners_of.setdefault(cap, set()).add(owner)

    def qualify(cap, cls):
        if cls is not None and (cls, cap) in model.instances:
            return f"{cls}::{cap}"
        owners = owners_of.get(cap, ())
        if len(owners) == 1:
            return f"{next(iter(owners))}::{cap}"
        return cap

    # Config completeness: every discovered instance must be ranked; every
    # LOCK_ORDER entry must exist.
    for (owner, cap), (rel, lineno) in sorted(model.instances.items()):
        qual = f"{owner}::{cap}"
        if qual not in rank:
            findings.append((rel, lineno, "lock-order",
                             f"capability instance '{qual}' is not in "
                             f"LOCK_ORDER (add it to gmmcs_lint.py at its "
                             f"place in the canonical order)"))
    # (Skipped when the tree declares no GMMCS_CAPABILITY classes at all —
    # then the annotation system isn't in use and the list is aspirational.)
    if model.cap_classes:
        known_quals = {f"{o}::{c}" for (o, c) in model.instances}
        for qual in lock_order:
            if qual not in known_quals:
                findings.append(("tools/lint/gmmcs_lint.py", 1, "lock-order",
                                 f"LOCK_ORDER entry '{qual}' matches no "
                                 f"capability instance in the tree (stale?)"))

    # ---- Per-function scope analysis. ----
    # Scopes: every function body (lambdas blanked) plus every lambda as
    # its own scope. Each scope gets (src, keys, held-intervals, acquires,
    # waits, body, base_offset, cls, is_ctor).
    scopes = []
    for src, cls, name, annos, body, off in model.functions:
        outer, lambdas = _split_lambdas(body, off)
        keys = _fn_keys(cls, name)
        if cls is None and "::" in name:
            # Out-of-line member definition: recover the owning class so
            # guarded-member and capability lookups work in the body (and
            # in its lambdas, which inherit this class).
            cls = name.rsplit("::", 1)[0].rsplit("::", 1)[-1]
        reqs = {_base_cap(a) for a in REQUIRES_RE.findall(annos)}
        for k in keys:
            reqs |= model.decl_requires.get(k, set())
        acq_anno = set()
        for k in keys:
            acq_anno |= model.decl_acquires.get(k, set())
        is_ctor = cls is not None and (name == cls or name == f"~{cls}"
                                       or name.lstrip("~") == cls)
        if "::" in name:
            tail = name.rsplit("::", 1)
            if tail[1].lstrip("~") == tail[0].rsplit("::", 1)[-1]:
                is_ctor = True
        scopes.append(dict(src=src, keys=keys, reqs=reqs, acq_anno=acq_anno,
                           body=outer, off=off, cls=cls, name=name,
                           is_ctor=is_ctor, annos=annos))
        for lam_annos, lam_body, lam_off in lambdas:
            lreqs = {_base_cap(a) for a in REQUIRES_RE.findall(lam_annos)}
            scopes.append(dict(src=src, keys=[], reqs=lreqs, acq_anno=set(),
                               body=lam_body, off=lam_off, cls=cls,
                               name=f"{name}::<lambda>", is_ctor=False,
                               annos=lam_annos))

    # may_acquire fixpoint: which capabilities can a call into fn key end
    # up blocking-acquiring (directly or transitively)?
    may_acquire = {}
    direct_calls = {}  # primary key -> called identifiers
    call_re = re.compile(r"\b([A-Za-z_]\w*)\s*\(")
    for sc in scopes:
        holds, acquires, waits = _scope_events(sc["body"])
        sc["holds"] = holds
        sc["acquires"] = acquires
        sc["waits"] = waits
        if not sc["keys"]:
            continue  # lambdas don't propagate to callers
        primary = sc["keys"][0]
        acq = {qualify(cap, sc["cls"])
               for cap, _p, blocking in acquires if blocking}
        acq |= {qualify(cap, sc["cls"]) for cap in sc["acq_anno"]}
        may_acquire.setdefault(primary, set()).update(acq)
        called = set(call_re.findall(sc["body"])) - FUNC_KEYWORDS
        for k in sc["keys"]:
            called |= model.extra_calls.get(k, set())
        direct_calls[primary] = called
    # Alias map: short name -> primary keys it may refer to.
    alias = {}
    for sc in scopes:
        for k in sc["keys"]:
            alias.setdefault(k, set()).add(sc["keys"][0])
            alias.setdefault(k.rsplit("::", 1)[-1], set()).add(sc["keys"][0])
    # Stale lock-order-calls annotations: an operand that resolves to no
    # function definition injects no edges — silently, which is how a
    # rename at a SmallFn/callback registration site used to disable the
    # very analysis the annotation exists for. Both operands must resolve.
    for src, lineno, caller, callee in model.extra_call_sites:
        for role, ident in (("caller", caller), ("callee", callee)):
            if ident in alias or src.suppressed(lineno, "lock-order"):
                continue
            findings.append(
                (src.rel, lineno, "lock-order",
                 f"lock-order-calls {role} '{ident}' matches no function "
                 f"definition in the tree — the stale annotation silently "
                 f"drops acquisition-graph edges (rename it to match the "
                 f"current registration site)"))
    changed = True
    while changed:
        changed = False
        for fn, called in direct_calls.items():
            for callee in called:
                for target in alias.get(callee, ()):
                    extra = may_acquire.get(target, set()) - may_acquire[fn]
                    if extra:
                        may_acquire[fn] |= extra
                        changed = True

    # ---- Edge construction + rank/cycle checks. ----
    edges = {}  # (held_qual, acquired_qual) -> (rel, lineno)

    def add_edge(held, acquired, src, pos, cls):
        held_q, acq_q = qualify(held, cls), qualify(acquired, cls)
        if held_q == acq_q:
            return
        edges.setdefault((held_q, acq_q), (src.rel, src.line_of(pos)))

    for sc in scopes:
        src = sc["src"]
        base = sc["off"]
        # Intervals where each cap is held: REQUIRES covers whole body.
        held_iv = [(cap, 0, len(sc["body"])) for cap in sc["reqs"]]
        held_iv += sc["holds"]

        def held_at(pos, held_iv=held_iv):
            return {cap for cap, s, e in held_iv if s <= pos < e}

        # Direct blocking acquisitions while something is held.
        for cap, pos, blocking in sc["acquires"]:
            if not blocking:
                continue
            for h in held_at(pos):
                add_edge(h, cap, src, base + pos, sc["cls"])
        # Transitive: calls into functions that may blocking-acquire.
        for m in call_re.finditer(sc["body"]):
            callee = m.group(1)
            if callee in FUNC_KEYWORDS:
                continue
            targets = alias.get(callee, ())
            acq = set()
            for t in targets:
                acq |= may_acquire.get(t, set())
            if not acq:
                continue
            held_here = held_at(m.start())
            for h in held_here:
                for a in acq:
                    add_edge(h, a, src, base + m.start(), sc["cls"])
        # GMMCS_ACQUIRE-annotated functions: body acquires its annotation
        # even without a visible MutexLock (wrapper functions).
        for cap in sc["acq_anno"]:
            for h in sc["reqs"]:
                add_edge(h, cap, src, base, sc["cls"])

    # Rank violations.
    for (held, acquired), (rel, lineno) in sorted(edges.items()):
        src = next((s for s in sources if s.rel == rel), None)
        if src is not None and src.suppressed(lineno, "lock-order"):
            continue
        rh = rank.get(held, rank.get(_base_cap(held.rsplit("::", 1)[-1])))
        ra = rank.get(acquired, rank.get(_base_cap(acquired.rsplit("::", 1)[-1])))
        if rh is None or ra is None:
            continue  # unknown instance already reported above
        if rh >= ra:
            findings.append((rel, lineno, "lock-order",
                             f"acquisition of '{acquired}' while holding "
                             f"'{held}' runs against the canonical lock "
                             f"order ({' -> '.join(lock_order)})"))
    # Cycles (catches deadlocks even among unranked/parametric caps).
    graph = {}
    for (a, b) in edges:
        graph.setdefault(a, set()).add(b)
    state, stack = {}, []

    def dfs(node):
        state[node] = 0
        stack.append(node)
        for nxt in sorted(graph.get(node, ())):
            if state.get(nxt) == 0:
                cycle = stack[stack.index(nxt):] + [nxt]
                rel, lineno = edges[(node, nxt)]
                src = next((s for s in sources if s.rel == rel), None)
                if not (src and src.suppressed(lineno, "lock-order")):
                    findings.append((rel, lineno, "lock-order",
                                     "lock acquisition cycle (potential "
                                     "deadlock): " + " -> ".join(cycle)))
            elif nxt not in state:
                dfs(nxt)
        stack.pop()
        state[node] = 1

    for node in sorted(graph):
        if node not in state:
            dfs(node)

    # ---- guarded-by: member access without the guard held. ----
    guard_names = set(model.guards)
    if guard_names:
        bare_re = re.compile(
            r"(?<![\w.>])(" + "|".join(sorted(guard_names)) + r")\b(?!\s*\()")
        pref_re = re.compile(
            r"(?:\.|->)\s*(" + "|".join(sorted(guard_names)) + r")\b(?!\s*\()")
        for sc in scopes:
            src = sc["src"]
            base = sc["off"]
            if sc["is_ctor"]:
                continue
            held_iv = [(cap, 0, len(sc["body"])) for cap in sc["reqs"]]
            held_iv += sc["holds"]

            def held_at(pos, held_iv=held_iv):
                return {cap for cap, s, e in held_iv if s <= pos < e}

            own_cls = sc["cls"]
            hits = []
            if own_cls is not None:
                for m in bare_re.finditer(sc["body"]):
                    member = m.group(1)
                    cap = model.guards[member].get(own_cls)
                    if cap is None:
                        continue  # same-named member of another class
                    hits.append((member, cap, m.start()))
            for m in pref_re.finditer(sc["body"]):
                member = m.group(1)
                caps = set(model.guards[member].values())
                if len(caps) != 1:
                    continue  # guard ambiguous across owners: skip
                hits.append((member, next(iter(caps)), m.start(1)))
            for member, cap, pos in hits:
                if cap in held_at(pos):
                    continue
                lineno = src.line_of(base + pos)
                if src.suppressed(lineno, "guarded-by"):
                    continue
                findings.append(
                    (src.rel, lineno, "guarded-by",
                     f"access to '{member}' (GMMCS_GUARDED_BY({cap})) in "
                     f"{sc['name']} which neither holds '{cap}' here nor "
                     f"declares GMMCS_REQUIRES({cap})"))

    # ---- condvar-hold. ----
    for sc in scopes:
        src = sc["src"]
        base = sc["off"]
        held_iv = [(cap, 0, len(sc["body"])) for cap in sc["reqs"]]
        held_iv += sc["holds"]
        for cap, pos in sc["waits"]:
            if cap in {"", "0"} or not re.match(r"^\w+$", cap):
                continue
            if cap not in owners_of and cap not in rank:
                continue  # .wait() on something that isn't a capability
            if any(s <= pos < e for c, s, e in held_iv if c == cap):
                continue
            lineno = src.line_of(base + pos)
            if src.suppressed(lineno, "condvar-hold"):
                continue
            findings.append(
                (src.rel, lineno, "condvar-hold",
                 f"condition-variable wait on '{cap}' in {sc['name']} "
                 f"without holding '{cap}'"))

    # De-duplicate (same site can be hit via multiple scopes).
    return sorted(set(findings))


# --------------------------------------------------------------------------
# Pass 6: snapshot discipline.
# --------------------------------------------------------------------------
#
# The epoch-snapshot control plane (DESIGN.md §12) publishes immutable
# snapshot objects through one atomic shared_ptr; dispatch paths load the
# current epoch lock-free and read it with no synchronization at all. The
# scheme is sound only while three invariants hold, and none of them is
# compiler-enforced once a const_cast or a stray non-const handle slips in:
#
#   snapshot-type         snapshot types stay structurally immutable: no
#                         `mutable` members and no non-const methods
#                         (constructors/destructors aside). A mutable
#                         match cache, say, would be a data race under
#                         concurrent lock-free readers.
#
#   snapshot-mutation     outside a writer scope, code holds only const
#                         handles to snapshot types (`shared_ptr<const T>`,
#                         `const T&`). A non-const handle — including
#                         make_shared<T> while a writer builds the next
#                         epoch — is writer-only, and casting constness
#                         away from a snapshot type is never legal, in any
#                         scope.
#
#   snapshot-publication  an atomic snapshot-pointer member is written
#                         (.store / .exchange / assignment) from writer
#                         scopes only; readers only .load().
#
# A scope counts as a *writer* from the point it provably runs under a
# capability: it declares GMMCS_REQUIRES(...) (on the definition or its
# header declaration) or has executed `.assert_held()`. That is the same
# serial-writer-context notion the lock-order pass uses; in this tree every
# snapshot writer runs under BrokerNetwork::ctx_.

# Class names forming the immutable snapshot surface. Like LOCK_ORDER,
# edit here when a new snapshot type is introduced.
SNAPSHOT_TYPES = [
    "ControlSnapshot",
    "RouteTables",
    "InterestTable",
]


def _blank_braced(text):
    """Length-preserving copy of `text` with the interiors of all brace
    groups blanked (newlines kept): leaves only top-level declarations."""
    out = list(text)
    depth = 0
    for i, c in enumerate(text):
        if c == "{":
            depth += 1
        elif c == "}":
            depth -= 1
        elif depth > 0 and c != "\n":
            out[i] = " "
    return "".join(out)


SNAP_METHOD_DECL_RE = re.compile(
    r"(~?\w+)\s*\(((?:[^();]|\([^()]*\))*)\)\s*"
    r"(?P<annos>(?:const|noexcept|final|override|->\s*[\w:<>]+|"
    r"GMMCS_\w+\s*\([^()]*\)|\s)*);")
SNAP_MUTABLE_RE = re.compile(r"^[ \t]*mutable\b", re.M)


def pass_snapshot(sources, snapshot_types=None, primitive_files=None):
    snapshot_types = (snapshot_types if snapshot_types is not None
                      else SNAPSHOT_TYPES)
    primitive_files = (primitive_files if primitive_files is not None
                       else LOCK_PRIMITIVE_FILES)
    findings = []
    if not snapshot_types:
        return findings
    # Cheap prefilter: fixture trees (and most modules) never mention a
    # snapshot type, so skip the model build entirely.
    if not any(t in src.text for src in sources for t in snapshot_types):
        return findings

    def emit(src, lineno, rule, msg):
        if not src.suppressed(lineno, rule):
            findings.append((src.rel, lineno, rule, msg))

    type_alt = "|".join(re.escape(t) for t in sorted(snapshot_types))
    cast_re = re.compile(
        rf"\b(?:const_cast|const_pointer_cast)\s*<[^<>;]*\b(?:{type_alt})\b")
    # Non-const handles: owning pointers to a mutable T, or T&/T* not
    # preceded by const. `shared_ptr<const T>` fails the match by
    # construction; the ref/pointer alternative checks its prefix below.
    handle_re = re.compile(
        rf"\b(?:std::)?(?:make_shared|make_unique|shared_ptr|unique_ptr)"
        rf"\s*<\s*(?:{type_alt})\s*>"
        rf"|\b(?:{type_alt})\s*(?:[&*]\s*)+\w")
    atomic_member_re = re.compile(
        rf"std::atomic\s*<\s*(?:std::shared_ptr\s*<\s*const\s+(?:{type_alt})"
        rf"\s*>|(?:{type_alt})Ptr)\s*>\s+(\w+)")

    def nonconst_handle_hits(text):
        for m in handle_re.finditer(text):
            if re.search(r"\bconst\s*$", text[:m.start()]):
                continue  # `const T&` / `const T*`: a reader handle
            yield m

    # ---- snapshot-type: structural immutability of the types. ----
    for src in sources:
        for cls, b0, b1, _cap in _scan_classes(src.text):
            if cls not in snapshot_types:
                continue
            top = _blank_braced(src.text[b0:b1])
            for m in SNAP_MUTABLE_RE.finditer(top):
                emit(src, src.line_of(b0 + m.start()), "snapshot-type",
                     f"snapshot type '{cls}' declares a mutable member — "
                     f"a data race under concurrent lock-free readers")
            for m in SNAP_METHOD_DECL_RE.finditer(top):
                name = m.group(1)
                if name.lstrip("~") == cls:
                    continue  # ctor/dtor declaration
                seg_start = max(top.rfind(";", 0, m.start()),
                                top.rfind("{", 0, m.start()),
                                top.rfind("}", 0, m.start())) + 1
                seg = top[seg_start:m.start()]
                if re.search(r"\b(?:static|friend|using|typedef)\b", seg):
                    continue
                if not re.search(r"[\w>&*\]]\s*$", seg):
                    continue  # no return type before it: not a declaration
                if re.search(r"\bconst\b", m.group("annos")):
                    continue
                emit(src, src.line_of(b0 + m.start()), "snapshot-type",
                     f"snapshot type '{cls}' declares non-const method "
                     f"'{name}' — published epochs must be immutable")

    # ---- Writer-scope analysis over every function body and lambda. ----
    model = _collect_model(sources, primitive_files)

    def recover_signature(src, name, annos, off):
        """The signature segment before the body brace, plus the real
        function name: _extract_functions_ctx reads `Ctor(...) :
        member(init) {` as a function named `member`, so ctors need their
        name recovered from the text."""
        brace = off - 1
        seg_start = max(src.text.rfind(";", 0, brace),
                        src.text.rfind("}", 0, brace),
                        src.text.rfind("{", 0, brace)) + 1
        raw_seg = src.text[seg_start:brace]
        seg = re.sub(r"\b(?:public|private|protected)\s*:", " ", raw_seg)
        colon = _init_list_split(seg)
        if colon >= 0:
            m = FUNC_SIG_RE.search(seg[:colon])
            if m and m.group("name") not in FUNC_KEYWORDS:
                return m.group("name"), (m.group("annos") or ""), \
                    seg_start, raw_seg
        return name, annos, seg_start, raw_seg

    functions = []
    for src, cls, name, annos, fbody, off in model.functions:
        name, annos, sig_off, sig = recover_signature(src, name, annos, off)
        functions.append((src, cls, name, annos, fbody, off, sig_off, sig))

    # snapshot-type, definitions: inline and out-of-line method bodies of
    # snapshot types (the declaration scan above only sees prototypes).
    for src, cls, name, annos, _fbody, off, _soff, _sig in functions:
        owner = cls
        tail = name
        if "::" in name:
            owner, tail = name.rsplit("::", 1)
            owner = owner.rsplit("::", 1)[-1]
        if owner not in snapshot_types:
            continue
        if tail.lstrip("~") == owner:
            continue  # ctor/dtor
        if re.search(r"\bconst\b", annos):
            continue
        emit(src, src.line_of(off), "snapshot-type",
             f"snapshot type '{owner}' defines non-const method '{tail}' — "
             f"published epochs must be immutable")

    atomic_members = set()
    for src in sources:
        for m in atomic_member_re.finditer(src.text):
            atomic_members.add(m.group(1))
    store_re = None
    if atomic_members:
        mem_alt = "|".join(sorted(atomic_members))
        store_re = re.compile(
            rf"\b({mem_alt})\s*(?:\.\s*(?:store|exchange)\s*\(|=(?!=))")

    scopes = []
    for src, cls, name, annos, fbody, off, sig_off, sig in functions:
        outer, lambdas = _split_lambdas(fbody, off)
        reqs = set(REQUIRES_RE.findall(annos))
        for k in _fn_keys(cls, name):
            reqs |= model.decl_requires.get(k, set())
        is_snap_method = (cls in snapshot_types
                          or ("::" in name and
                              name.rsplit("::", 2)[-2] in snapshot_types))
        scopes.append((src, name, outer, off, bool(reqs),
                       is_snap_method, sig_off, sig))
        for lam_annos, lam_body, lam_off in lambdas:
            scopes.append((src, f"{name}::<lambda>", lam_body, lam_off,
                           bool(REQUIRES_RE.findall(lam_annos)),
                           False, 0, ""))

    for src, name, body, off, writer, is_snap_method, sig_off, sig in scopes:
        # Writer status begins at the first assert_held() when there is no
        # REQUIRES: code before the assert is still reader-side.
        writer_from = 0 if writer else None
        if writer_from is None:
            am = ASSERT_HELD_RE.search(body)
            if am:
                writer_from = am.end()

        def in_writer(pos, writer_from=writer_from):
            return writer_from is not None and pos >= writer_from

        # snapshot-mutation: const_cast is never legal, handles only in
        # writer scopes.
        for m in cast_re.finditer(body):
            emit(src, src.line_of(off + m.start()), "snapshot-mutation",
                 f"casting constness away from a snapshot type in {name} — "
                 f"published epochs are immutable; build a new one under "
                 f"the writer context instead")
        if not is_snap_method:
            for m in nonconst_handle_hits(body):
                if in_writer(m.start()):
                    continue
                emit(src, src.line_of(off + m.start()), "snapshot-mutation",
                     f"non-const handle to a snapshot type in {name}, which "
                     f"is not a writer scope (no GMMCS_REQUIRES, no prior "
                     f"assert_held) — readers must hold const handles")
            # The signature too: a non-const snapshot parameter or return
            # is reader-side mutation access unless the function is a
            # REQUIRES-annotated writer.
            if not writer:
                for m in nonconst_handle_hits(sig):
                    emit(src, src.line_of(sig_off + m.start()),
                         "snapshot-mutation",
                         f"non-const handle to a snapshot type in the "
                         f"signature of {name}, which is not a writer scope "
                         f"— take shared_ptr<const T>/const T& instead")
        # snapshot-publication: atomic snapshot pointer written outside a
        # writer scope.
        if store_re is not None:
            for m in store_re.finditer(body):
                if in_writer(m.start()):
                    continue
                emit(src, src.line_of(off + m.start()),
                     "snapshot-publication",
                     f"atomic snapshot pointer '{m.group(1)}' written in "
                     f"{name}, which is not a writer scope — publication "
                     f"must happen under the writer context only")

    # Non-const handles in class bodies (member/prototype declarations):
    # a member that keeps a mutable handle to a snapshot type defeats the
    # shared_ptr<const> reclamation contract no matter who touches it.
    for src in sources:
        for cls, b0, b1, _cap in _scan_classes(src.text):
            if cls in snapshot_types:
                continue  # the types' own internals are rule-1 territory
            top = _blank_braced(src.text[b0:b1])
            for m in nonconst_handle_hits(top):
                emit(src, src.line_of(b0 + m.start()), "snapshot-mutation",
                     f"non-const snapshot handle declared in class '{cls}' "
                     f"— hold shared_ptr<const T>/const T& instead and "
                     f"build new epochs from locals in the writer")

    return sorted(set(findings))


# --------------------------------------------------------------------------
# Driver.
# --------------------------------------------------------------------------

PASSES = {
    "layering": lambda srcs: pass_layering(srcs),
    "result": lambda srcs: pass_result(srcs),
    "codec": lambda srcs: pass_codec_symmetry(srcs),
    "switch": lambda srcs: pass_switch_exhaustiveness(srcs),
    "lock-order": lambda srcs: pass_lock_order(srcs),
    "snapshot": lambda srcs: pass_snapshot(srcs),
}


def apply_fixes(root, findings):
    """Applies the mechanical fixes (today: inserting [[nodiscard]] on
    Result<T> declarations flagged by the result pass). Returns the number
    of edits made. Idempotent by construction: a fixed declaration no
    longer produces the finding that drives the edit."""
    by_file = {}
    for rel, lineno, rule, _msg in findings:
        if rule == "nodiscard":
            by_file.setdefault(rel, set()).add(lineno)
    edits = 0
    for rel, linenos in sorted(by_file.items()):
        path = root / rel
        raw = path.read_text().splitlines(keepends=True)
        for lineno in sorted(linenos):
            line = raw[lineno - 1]
            stripped = line.lstrip()
            indent = line[:len(line) - len(stripped)]
            raw[lineno - 1] = indent + "[[nodiscard]] " + stripped
            edits += 1
        path.write_text("".join(raw))
    return edits


def run(root, compile_commands=None, passes=None):
    files = collect_files(root, compile_commands)
    sources = load_sources(root, files)
    findings = []
    for src in sources:
        findings.extend(check_suppression_reasons(src))
    for name in (passes or PASSES):
        findings.extend(PASSES[name](sources))
    findings.sort()
    return findings, len(files)


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--compile-commands", type=Path, default=None,
                    help="compile_commands.json from the build tree")
    ap.add_argument("--root", type=Path, default=Path.cwd(),
                    help="repository root (default: cwd)")
    ap.add_argument("--passes", default=None,
                    help="comma-separated subset of: " + ",".join(PASSES))
    ap.add_argument("--fix", action="store_true",
                    help="auto-insert missing [[nodiscard]] on Result<T> "
                         "declarations, then re-lint")
    args = ap.parse_args()

    root = args.root.resolve()
    if not (root / "src").is_dir():
        print(f"gmmcs-lint: no src/ under {root}", file=sys.stderr)
        return 2
    passes = None
    if args.passes:
        passes = [p.strip() for p in args.passes.split(",") if p.strip()]
        unknown = [p for p in passes if p not in PASSES]
        if unknown:
            print(f"gmmcs-lint: unknown pass(es): {', '.join(unknown)}",
                  file=sys.stderr)
            return 2

    findings, nfiles = run(root, args.compile_commands, passes)
    if args.fix:
        fixed = apply_fixes(root, findings)
        if fixed:
            print(f"gmmcs-lint: --fix inserted [[nodiscard]] on {fixed} "
                  f"declaration(s)")
            findings, nfiles = run(root, args.compile_commands, passes)
    for rel, lineno, rule, msg in findings:
        print(f"{rel}:{lineno}: [{rule}] {msg}")
    if findings:
        print(f"gmmcs-lint: {len(findings)} finding(s) in {nfiles} files")
        return 1
    print(f"gmmcs-lint: {nfiles} files scanned, clean "
          f"(passes: {', '.join(passes or PASSES)})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
