#!/usr/bin/env python3
"""gmmcs-lint: multi-pass conformance analyzer for the Global-MMCS tree.

Global-MMCS is a bundle of protocol stacks (XGSP, H.323, SIP, broker
events, RTP, SOAP, RTSP) that interoperate through layered translation.
Three classes of latent cross-protocol bugs survive unit tests in such a
codebase: a silent layering violation (a lower layer reaching up), a
dropped Result from a wire-data parse, and an encode/decode asymmetry
that only bites when the *other* stack parses the bytes. This linter
makes all three machine-checked. Seven passes share one compilation-
database loader (tools/lint/frontend.py, shared with the determinism
linter) and one suppression syntax:

  layering         every `#include "mod/..."` edge is checked against the
                   declared layer DAG
                       common
                         -> sim / transport / xml
                         -> broker / rtp / media
                         -> h323 / sip / xgsp / soap / streaming /
                            admire / baseline
                         -> core
                   Upward includes are errors; so is any cycle in the
                   actual module graph (same-layer edges are allowed as
                   long as they stay acyclic). New top-level src/ dirs
                   must be added to LAYERS or they are errors too.

  result-discipline  (1) every function returning Result<T> must be
                   declared [[nodiscard]]; (2) a call to a known
                   Result-returning parser/decoder must not be discarded
                   as an expression statement; (3) `.value()` needs a
                   dominating ok()-style check earlier in the same
                   function (conservative text dominance — suppress the
                   rare false positive with a reason).

  codec-symmetry   for each wire-message family the encode body's write
                   sequence (ByteWriter ops, helpers spliced, loops kept
                   as groups) must equal the decode body's read sequence.
                   Dispatch decoders (one switch over the tag byte) are
                   compared per-case against the encoder that writes that
                   tag. Text/XML codecs are checked by field coverage:
                   struct members written by serialize and members
                   assigned by parse must be the same set.

  switch-exhaustiveness  a switch over a message-kind enum (MessageType,
                   RasType, Q931Type, H245Type, MsgType) must either
                   cover every enumerator or carry a default that is
                   substantive (handles the rest, e.g. returns an error)
                   or commented with a reason. A bare `default: break;`
                   silently eats future enumerators.

  lock-order       tree-wide lock-acquisition graph built from the
                   GMMCS_CAPABILITY annotations: rank inversions against
                   the canonical LOCK_ORDER, acquisition cycles,
                   guarded-member access without the capability, condvar
                   waits without the lock, stale lock-order-calls
                   annotations (details at the pass, DESIGN.md §11).

  snapshot         epoch-snapshot immutability discipline (DESIGN.md
                   §12): snapshot types carry no mutable state, code
                   outside writer scopes holds only const handles to
                   them, and the atomic snapshot pointer is published
                   from writer scopes only (details at the pass).

  lifetime         deferred-capture escape analysis (DESIGN.md §14):
                   every lambda that flows into a deferred-execution
                   sink (EventLoop::schedule_*/post_effect,
                   ServiceCenter::submit/submit_batch, stored callback
                   slots, and anything a may-defer fixpoint proves
                   stores its callable parameter) has each capture
                   classified; a by-reference / raw-pointer / `this`
                   capture outliving its scope is an error unless the
                   captured object's type is GMMCS_PINNED (lifetime
                   pinned to the run) or the callable is structurally
                   proven to be cancelled/unbound before the object
                   dies (details at the pass).

Suppressions: a line (or the line directly above it) containing
`gmmcs-lint: allow(<rule>): <reason>` is exempt from <rule>. The reason
text is mandatory; an empty reason is itself reported (rule
`suppression-reason`). `allow(all)` exists for generated code only.

Usage:
  gmmcs_lint.py [--compile-commands build/compile_commands.json]
                [--root REPO_ROOT] [--passes layering,result,...]
                [--jobs N] [--fix]

Exit status 0 = clean, 1 = findings, 2 = usage error.
"""

import argparse
import re
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
import frontend
from frontend import SourceFile, strip_comments, discover_compile_commands

# --------------------------------------------------------------------------
# Configuration (edit here when the tree grows).
# --------------------------------------------------------------------------

# Module -> layer rank. An include from module A to module B is legal iff
# rank(B) <= rank(A); ties are legal but must stay acyclic.
LAYERS = {
    "common": 0,
    "sim": 1,
    "transport": 1,
    "xml": 1,
    "broker": 2,
    "rtp": 2,
    "media": 2,
    "h323": 3,
    "sip": 3,
    "xgsp": 3,
    "soap": 3,
    "streaming": 3,
    "admire": 3,
    "baseline": 3,
    "core": 4,
}

# Message-kind enums whose switches must be exhaustive (or carry a
# justified default). Keyed by enumerator spelling, values are collected
# from the enum definitions found in src/.
MESSAGE_ENUMS = {"MessageType", "RasType", "Q931Type", "H245Type", "MsgType"}

# Function base names that (in this tree) only ever name Result-returning
# wire parsers: a discarded expression-statement call to one of these is
# always a bug.
RESULT_CALL_NAMES = {
    "decode", "parse", "from_xml", "parse_rtcp", "parse_envelope",
    "parse_contact", "parse_http_request", "parse_http_response",
}

# Binary codec families: files whose ByteWriter/ByteReader functions are
# paired and sequence-compared. Pairing is automatic: Class::encode or
# Class::serialize vs Class::decode or Class::parse; write_X vs read_X and
# encode_X vs decode_X helpers; and tag-dispatch decoders (a switch whose
# cases read) vs the encoder mentioning the same tag enumerator/constant.
BINARY_CODEC_FILES = [
    "src/broker/event.cpp",
    "src/h323/messages.cpp",
    "src/rtp/packet.cpp",
    "src/rtp/rtcp.cpp",
]

# Text/XML codec families, checked by member coverage. `structs` lists
# (header, struct-name) whose data members form the field universe;
# `encode`/`decode` name the paired functions in `impl`.
TEXT_CODEC_FAMILIES = [
    dict(name="sip-message", impl="src/sip/message.cpp",
         structs=[("src/sip/message.hpp", "SipMessage")],
         encode=["SipMessage::serialize"], decode=["SipMessage::parse"],
         # `user`/`host` belong to SipUri, parsed separately.
         ignore=set()),
    dict(name="sip-sdp", impl="src/sip/sdp.cpp",
         structs=[("src/sip/sdp.hpp", "Sdp"), ("src/sip/sdp.hpp", "SdpMedia")],
         encode=["Sdp::serialize"], decode=["Sdp::parse"],
         ignore=set()),
    dict(name="rtsp", impl="src/streaming/rtsp.cpp",
         structs=[("src/streaming/rtsp.hpp", "RtspMessage")],
         encode=["RtspMessage::serialize"], decode=["RtspMessage::parse"],
         ignore=set()),
    dict(name="xgsp-message", impl="src/xgsp/messages.cpp",
         structs=[("src/xgsp/messages.hpp", "Message")],
         encode=["Message::to_xml"], decode=["Message::from_xml"],
         ignore=set()),
]

MESSAGES = {
    "layering": "%s",
    "layering-cycle": "%s",
    "nodiscard": "Result-returning declaration '%s' is missing [[nodiscard]]",
    "discarded-result": "call to Result-returning '%s' discards its result",
    "unchecked-value": "%s",
    "codec-symmetry": "%s",
    "switch-exhaustive": "%s",
    "lock-order": "%s",
    "guarded-by": "%s",
    "condvar-hold": "%s",
    "snapshot-type": "%s",
    "snapshot-mutation": "%s",
    "snapshot-publication": "%s",
    "lifetime": "%s",
    "copy": "%s",
    "wire": "%s",
    "suppression-reason": "gmmcs-lint suppression without a reason "
                          "(write `gmmcs-lint: allow(rule): why`)",
}

# --------------------------------------------------------------------------
# Shared infrastructure.
# --------------------------------------------------------------------------

SUPPRESS_RE = re.compile(r"gmmcs-lint:\s*allow\(([a-z-]+)\)(?::?\s*(.*?))?\s*(?:\*/)?\s*$")


def check_suppression_reasons(src):
    """The meta-rule: every suppression must carry a reason."""
    findings = []
    for idx, line in enumerate(src.raw):
        m = SUPPRESS_RE.search(line)
        if m and not (m.group(2) or "").strip():
            findings.append((src.rel, idx + 1, "suppression-reason",
                             MESSAGES["suppression-reason"]))
    return findings


def collect_files(root, compile_commands):
    return frontend.collect_files(root, compile_commands, tool="gmmcs-lint")


def load_sources(root, files, jobs=1):
    return frontend.load_sources(root, files, jobs=jobs)


# --------------------------------------------------------------------------
# Pass 1: layering.
# --------------------------------------------------------------------------

INCLUDE_RE = re.compile(r'#\s*include\s*"([^"]+)"')


def pass_layering(sources, layers=None):
    layers = layers if layers is not None else LAYERS
    findings = []
    edges = {}  # (from_mod, to_mod) -> first (rel, lineno) seen
    for src in sources:
        parts = src.rel.split("/")
        if len(parts) < 3 or parts[0] != "src":
            continue
        mod = parts[1]
        if mod not in layers:
            findings.append((src.rel, 1, "layering",
                             f"module '{mod}' is not in the declared layer DAG "
                             f"(add it to LAYERS in gmmcs_lint.py)"))
            continue
        for idx, line in enumerate(src.code):
            for m in INCLUDE_RE.finditer(line):
                inc = m.group(1)
                if "/" not in inc:
                    continue
                to_mod = inc.split("/")[0]
                if to_mod not in layers:
                    continue  # not a src/ module include (e.g. generated)
                if to_mod == mod:
                    continue
                if src.suppressed(idx + 1, "layering"):
                    continue
                if layers[to_mod] > layers[mod]:
                    findings.append(
                        (src.rel, idx + 1, "layering",
                         f"upward include: layer-{layers[mod]} module '{mod}' "
                         f"includes layer-{layers[to_mod]} module '{to_mod}' "
                         f"(\"{inc}\")"))
                edges.setdefault((mod, to_mod), (src.rel, idx + 1))
    # Cycle detection over the actual module graph (covers same-layer ties).
    graph = {}
    for (a, b) in edges:
        graph.setdefault(a, set()).add(b)
    state = {}  # 0=visiting, 1=done
    stack = []

    def dfs(node):
        state[node] = 0
        stack.append(node)
        for nxt in sorted(graph.get(node, ())):
            if state.get(nxt) == 0:
                cycle = stack[stack.index(nxt):] + [nxt]
                rel, lineno = edges[(node, nxt)]
                findings.append((rel, lineno, "layering-cycle",
                                 "module cycle: " + " -> ".join(cycle)))
            elif nxt not in state:
                dfs(nxt)
        stack.pop()
        state[node] = 1

    for node in sorted(graph):
        if node not in state:
            dfs(node)
    return findings


# --------------------------------------------------------------------------
# Pass 2: result discipline.
# --------------------------------------------------------------------------

RESULT_DECL_RE = re.compile(
    r"^\s*(?P<nd>\[\[nodiscard\]\]\s+)?(?:static\s+)?(?:gmmcs::)?Result<")
DECL_NAME_RE = re.compile(r">\s*&?\s*(?P<name>[\w:]+)\s*\(")
VALUE_USE_RE = re.compile(r"\.\s*value\s*\(\s*\)")


def _decl_name(line):
    """Function name of a `Result<...> name(...)` line, or None."""
    # Find the matching '>' of the Result template argument list.
    start = line.find("Result<")
    depth = 0
    i = start + len("Result<") - 1
    while i < len(line):
        if line[i] == "<":
            depth += 1
        elif line[i] == ">":
            depth -= 1
            if depth == 0:
                break
        i += 1
    m = DECL_NAME_RE.match(line, i)
    return m.group("name") if m else None


def pass_result(sources, call_names=None):
    call_names = call_names if call_names is not None else RESULT_CALL_NAMES
    findings = []

    # Names declared Result-returning in headers: their .cpp definitions
    # need no repeated attribute (it lives on the first declaration).
    header_declared = set()
    for src in sources:
        if not src.rel.endswith((".hpp", ".h")):
            continue
        for line in src.code:
            if RESULT_DECL_RE.match(line):
                name = _decl_name(line)
                if name:
                    header_declared.add(name.split("::")[-1])

    for src in sources:
        is_header = src.rel.endswith((".hpp", ".h"))
        for idx, line in enumerate(src.code):
            m = RESULT_DECL_RE.match(line)
            if not m:
                continue
            name = _decl_name(line)
            if name is None:
                continue
            if not is_header:
                if "::" in name:
                    continue  # out-of-line member def; attribute is on the decl
                if name in header_declared:
                    continue  # free-function def; attribute is on the decl
            has_nd = bool(m.group("nd")) or "[[nodiscard]]" in src.code[idx - 1:idx]
            if not has_nd and not src.suppressed(idx + 1, "nodiscard"):
                findings.append((src.rel, idx + 1, "nodiscard",
                                 MESSAGES["nodiscard"] % name))

        # (2) discarded expression-statement calls to known parser names.
        discard_re = re.compile(
            r"^\s*(?:[A-Za-z_]\w*(?:::|\.|->))*(?P<name>"
            + "|".join(sorted(call_names)) + r")\s*\(")
        prev_code = ""
        for idx, line in enumerate(src.code):
            stripped = line.strip()
            if stripped:
                dm = discard_re.match(line)
                starts_statement = prev_code == "" or prev_code[-1] in ";{}:"
                if dm and starts_statement and not src.suppressed(idx + 1, "discarded-result"):
                    findings.append((src.rel, idx + 1, "discarded-result",
                                     MESSAGES["discarded-result"] % dm.group("name")))
                prev_code = stripped
        # (3) .value() without a dominating ok() check.
        findings.extend(_check_value_calls(src))
    return findings


def _function_span_start(src, lineno):
    """Crude function boundary: the line after the most recent column-0 `}`."""
    for j in range(lineno - 1, -1, -1):
        if src.code[j].startswith("}"):
            return j + 1
    return 0


def _value_receiver(code_line, col):
    """Receiver expression of a `.value()` at `col` (index of the dot).
    Returns (kind, name): kind 'var' for an identifier (possibly through
    std::move), 'chain' for a direct call chain like parse(x).value()."""
    i = col - 1
    while i >= 0 and code_line[i].isspace():
        i -= 1
    if i >= 0 and code_line[i] == ")":
        depth = 0
        while i >= 0:
            if code_line[i] == ")":
                depth += 1
            elif code_line[i] == "(":
                depth -= 1
                if depth == 0:
                    break
            i -= 1
        inner = code_line[i + 1:col].rstrip(") \t")
        j = i - 1
        while j >= 0 and (code_line[j].isalnum() or code_line[j] in "_:"):
            j -= 1
        callee = code_line[j + 1:i]
        if callee.endswith("move"):
            m = re.match(r"\s*([A-Za-z_]\w*)\s*$", inner)
            if m:
                return "var", m.group(1)
        return "chain", callee or "<expr>"
    j = i
    while j >= 0 and (code_line[j].isalnum() or code_line[j] == "_"):
        j -= 1
    name = code_line[j + 1:i + 1]
    return ("var", name) if name else ("chain", "<expr>")


def _check_value_calls(src):
    findings = []
    for idx, line in enumerate(src.code):
        for m in VALUE_USE_RE.finditer(line):
            lineno = idx + 1
            if src.suppressed(lineno, "unchecked-value"):
                continue
            kind, name = _value_receiver(line, m.start())
            if kind == "var" and name:
                start = _function_span_start(src, idx)
                span = "\n".join(src.code[start:idx + 1])
                guard = re.compile(
                    rf"\b{re.escape(name)}\s*\.\s*ok\s*\(\s*\)"
                    rf"|!\s*{re.escape(name)}\b"
                    rf"|(?:if|while)\s*\(\s*{re.escape(name)}\s*\)"
                    rf"|\(\s*{re.escape(name)}\s*&&|&&\s*{re.escape(name)}\b"
                    rf"|\b{re.escape(name)}\s*\?")
                if guard.search(span):
                    continue
                findings.append((src.rel, lineno, "unchecked-value",
                                 f"'{name}.value()' has no dominating "
                                 f"'{name}.ok()'-style check in this function"))
            else:
                findings.append((src.rel, lineno, "unchecked-value",
                                 f".value() chained directly onto '{name}(...)' "
                                 f"— bind the Result and check ok() first"))
    return findings


# --------------------------------------------------------------------------
# Pass 3: codec symmetry.
# --------------------------------------------------------------------------
#
# Binary codecs: we extract, for every function in a codec file, the
# ordered sequence of ByteWriter/ByteReader operations (u8/u16/u32/u64/
# lstr/str/raw/skip), with calls to sibling helper functions spliced in
# and loop bodies kept as nested groups:  ["u8", ["u32"], "lstr"] means
# u8, a repeated u32, then lstr. str/raw/skip normalize to "raw" (all are
# length-carried byte runs). Then we pair encoders with decoders and
# compare sequences; a mismatch is wire drift.

OP_NORMALIZE = {"u8": "u8", "u16": "u16", "u32": "u32", "u64": "u64",
                "lstr": "lstr", "str": "raw", "raw": "raw", "skip": "raw",
                # Zero-copy read-side siblings: a view consumes the same
                # length-carried byte run a raw write produced.
                "view": "raw", "str_view": "raw", "lstr_view": "lstr", "rest": "raw",
                # Checked bounded reads (wire pass): each consumes exactly
                # the wire bytes of its unchecked twin, so a decoder that
                # hardens a length/count read stays mirror-symmetric with
                # the encoder's plain write.
                "read_len_bounded": "u32", "read_count_u8": "u8",
                "read_count_u16": "u16", "read_count_u32": "u32"}

FUNC_HEAD_RE = re.compile(
    r"(?:^|\n)\s*(?:template\s*<[^>]*>\s*)?"
    r"(?P<head>[A-Za-z_][\w:<>,&*\s\[\]]*?)\s*"
    r"\(", re.S)


def _extract_functions(text):
    """Yields (name, params, body, offset) for every function definition.

    Walks the text tracking brace depth; `namespace X {` is transparent,
    class/struct/enum bodies are skipped (methods defined inline in codec
    files are not a thing here). A function is a top-level `... name(args)
    [const] {` with a balanced body."""
    funcs = []
    i, n = 0, len(text)
    depth = 0
    while i < n:
        c = text[i]
        if c == "{":
            # Look backwards for what opened this brace.
            seg_start = max(text.rfind(";", 0, i), text.rfind("}", 0, i),
                            text.rfind("{", 0, i)) + 1
            seg = text[seg_start:i]
            if re.search(r"\b(namespace)\b", seg):
                depth += 0  # transparent: descend
                i += 1
                continue
            if re.search(r"\b(struct|class|enum|union)\b", seg) and "(" not in seg:
                i = _skip_braces(text, i)
                continue
            pm = re.search(r"([\w:~]+)\s*\(", seg)
            if pm and not re.search(r"\b(if|for|while|switch|return|catch)\s*\($",
                                    seg[:pm.end()]):
                name = pm.group(1)
                close = _matching_paren(text, seg_start + pm.end() - 1)
                params = text[seg_start + pm.end():close] if close > 0 else ""
                end = _skip_braces(text, i)
                funcs.append((name, params, text[i + 1:end - 1], i))
                i = end
                continue
            i += 1
        else:
            i += 1
    return funcs


def _matching_paren(text, open_idx):
    depth = 0
    for i in range(open_idx, len(text)):
        if text[i] == "(":
            depth += 1
        elif text[i] == ")":
            depth -= 1
            if depth == 0:
                return i
    return -1


def _skip_braces(text, open_idx):
    depth = 0
    for i in range(open_idx, len(text)):
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth == 0:
                return i + 1
    return len(text)


def _io_vars(params, body, cls):
    """Names of ByteWriter/ByteReader variables visible in a function."""
    names = set()
    for m in re.finditer(rf"\b{cls}\s*&?\s*([A-Za-z_]\w*)", params):
        names.add(m.group(1))
    for m in re.finditer(rf"\b{cls}\s+([A-Za-z_]\w*)\s*[;({{]", body):
        names.add(m.group(1))
    return names


def _cond_key(cond):
    """Stable identity of a flag-guard condition: the sorted k-constants it
    mentions (`flags & kHasExt` == `m.flags & kHasExt`), else the condition
    with whitespace squeezed out."""
    consts = sorted(set(re.findall(r"\bk[A-Z]\w*", cond)))
    return ",".join(consts) if consts else re.sub(r"\s+", "", cond)


def _extract_seq(body, io_names, helpers):
    """Nested op sequence of `body`. Loops become sub-lists; flag-guarded
    `if` (and `else`) bodies that perform ops become ("cond", key, ops)
    groups, so `if (flags & kHasExt) w.u32(ext)` on the encode side is
    symmetric with `if (flags & kHasExt) ext = r.u32()` on the decode side
    — same guard key, same ops — regardless of how each side spells the
    flags expression."""
    tokens = []
    io_alt = "|".join(sorted(io_names)) if io_names else r"(?!x)x"
    helper_alt = "|".join(sorted(helpers)) if helpers else r"(?!x)x"
    tok_re = re.compile(
        rf"\b(?P<io>{io_alt})\s*\.\s*(?P<op>read_len_bounded|read_count_u8|"
        rf"read_count_u16|read_count_u32|"
        rf"u8|u16|u32|u64|lstr_view|lstr|str_view|str|raw|view|rest|skip)\s*\("
        rf"|\b(?P<helper>{helper_alt})\s*\("
        rf"|\b(?P<loop>for|while)\s*\("
        rf"|\b(?P<cond>if)\s*\(")

    def branch_extent(after_close):
        j = after_close
        while j < len(body) and body[j].isspace():
            j += 1
        if j < len(body) and body[j] == "{":
            end = _skip_braces(body, j)
            return body[j + 1:end - 1], end
        end = body.find(";", j) + 1 or len(body)
        return body[j:end], end

    i = 0
    while i < len(body):
        m = tok_re.search(body, i)
        if not m:
            break
        if m.group("op"):
            tokens.append(OP_NORMALIZE[m.group("op")])
            i = m.end()
        elif m.group("helper"):
            tokens.append(("call", m.group("helper")))
            i = m.end()
        elif m.group("loop"):  # loop: wrap the body extent in a group
            close = _matching_paren(body, body.index("(", m.start()))
            if close < 0:
                i = m.end()
                continue
            inner, end = branch_extent(close + 1)
            group = _extract_seq(inner, io_names, helpers)
            if group:
                tokens.append(group)
            i = end
        else:  # if: ops inside become a keyed conditional group
            open_idx = body.index("(", m.start())
            close = _matching_paren(body, open_idx)
            if close < 0:
                i = m.end()
                continue
            cond = body[open_idx + 1:close]
            # Ops in the condition itself (`if (r.u8() != kTag) ...`)
            # always execute: they stay flat, before any group.
            tokens.extend(_extract_seq(cond, io_names, helpers))
            inner, end = branch_extent(close + 1)
            group = _extract_seq(inner, io_names, helpers)
            key = _cond_key(cond)
            if group:
                tokens.append(("cond", key, group))
            # An `else` branch with ops is its own group under the negated
            # key (an `else if` re-enters the `if` handling naturally).
            em = re.match(r"\s*else\b(?!\s*if\b)", body[end:])
            if em:
                e_inner, end = branch_extent(end + em.end())
                e_group = _extract_seq(e_inner, io_names, helpers)
                if e_group:
                    tokens.append(("cond", "!" + key, e_group))
            i = end
    return tokens


def _splice(seq, seqs_by_name, active=()):
    """Resolves ("call", helper) markers into the helper's own sequence."""
    out = []
    for tok in seq:
        if isinstance(tok, list):
            out.append(_splice(tok, seqs_by_name, active))
        elif isinstance(tok, tuple) and tok[0] == "cond":
            out.append(("cond", tok[1],
                        _splice(tok[2], seqs_by_name, active)))
        elif isinstance(tok, tuple):
            name = tok[1]
            if name in active:  # recursion guard
                continue
            out.extend(_splice(seqs_by_name.get(name, []), seqs_by_name,
                               active + (name,)))
        else:
            out.append(tok)
    return out


def _fmt_seq(seq):
    parts = []
    for tok in seq:
        if isinstance(tok, list):
            parts.append(f"[{_fmt_seq(tok)}]*")
        elif isinstance(tok, tuple) and tok[0] == "cond":
            parts.append(f"if<{tok[1]}>[{_fmt_seq(tok[2])}]")
        else:
            parts.append(tok)
    return " ".join(parts)


CASE_RE = re.compile(r"\bcase\s+(?:[\w:]+::)?(\w+)\s*:")


def _split_dispatch(body):
    """For a tag-dispatch decoder: (prefix_text, {label: case_text}) or None.

    A dispatch decoder reads a tag then switches on it, reading fields in
    the cases. Returns None when the body has no switch (or the switch
    reads nothing — a validation switch, not a dispatch)."""
    m = re.search(r"\bswitch\s*\(", body)
    if not m:
        return None
    close = _matching_paren(body, body.index("(", m.start()))
    j = body.find("{", close)
    if j < 0:
        return None
    end = _skip_braces(body, j)
    switch_body = body[j + 1:end - 1]
    prefix = body[:m.start()]
    cases = {}
    pending = []
    pos = 0
    segments = []  # (labels, text)
    for cm in CASE_RE.finditer(switch_body):
        if pending and switch_body[pos:cm.start()].strip(" \n"):
            segments.append((pending, switch_body[pos:cm.start()]))
            pending = []
        pending.append(cm.group(1))
        pos = cm.end()
    dm = re.search(r"\bdefault\s*:", switch_body[pos:])
    tail_end = pos + dm.start() if dm else len(switch_body)
    if pending:
        segments.append((pending, switch_body[pos:tail_end]))
    for labels, text in segments:
        for lab in labels:
            cases[lab] = text
    return prefix, cases


def pass_codec_symmetry(sources, codec_files=None, text_families=None):
    codec_files = codec_files if codec_files is not None else BINARY_CODEC_FILES
    text_families = text_families if text_families is not None else TEXT_CODEC_FAMILIES
    findings = []
    by_rel = {s.rel: s for s in sources}
    for rel in codec_files:
        src = by_rel.get(rel)
        if src is None:
            continue
        findings.extend(_check_binary_codec(src))
    for fam in text_families:
        findings.extend(_check_text_codec(by_rel, fam))
    return findings


def _check_binary_codec(src):
    findings = []
    funcs = _extract_functions(src.text)
    names = [f[0] for f in funcs]
    helper_names = {n for n in names if "::" not in n}

    writer_seqs, reader_seqs = {}, {}
    raw_seqs = {}
    offsets = {}
    bodies = {}
    for name, params, body, off in funcs:
        wr = _io_vars(params, body, "ByteWriter")
        rd = _io_vars(params, body, "ByteReader")
        offsets[name] = off
        bodies[name] = body
        if wr:
            raw_seqs[name] = _extract_seq(body, wr, helper_names)
            writer_seqs[name] = raw_seqs[name]
        elif rd:
            raw_seqs[name] = _extract_seq(body, rd, helper_names)
            reader_seqs[name] = raw_seqs[name]

    def resolved(name):
        return _splice(raw_seqs.get(name, []), raw_seqs)

    def report(where, enc, dec, enc_seq, dec_seq):
        lineno = src.line_of(offsets.get(where, 0))
        if src.suppressed(lineno, "codec-symmetry"):
            return
        findings.append(
            (src.rel, lineno, "codec-symmetry",
             f"encode/decode drift for {enc} vs {dec}: "
             f"write seq [{_fmt_seq(enc_seq)}] != read seq [{_fmt_seq(dec_seq)}]"))

    # --- method pairs: Class::{encode,serialize} vs Class::{decode,parse} ---
    paired_decoders = set()
    for name in writer_seqs:
        if "::" not in name:
            continue
        cls = name.rsplit("::", 1)[0]
        for dec_suffix in ("decode", "parse"):
            dec = f"{cls}::{dec_suffix}"
            if dec in reader_seqs:
                enc_seq, dec_seq = resolved(name), resolved(dec)
                if enc_seq and dec_seq and enc_seq != dec_seq:
                    report(dec, name, dec, enc_seq, dec_seq)
                paired_decoders.add(dec)

    # --- helper pairs: write_X/read_X, encode_X/decode_X ---
    for name in writer_seqs:
        for w_pre, r_pre in (("write_", "read_"), ("encode_", "decode_")):
            if name.startswith(w_pre):
                dec = r_pre + name[len(w_pre):]
                if dec in reader_seqs:
                    enc_seq, dec_seq = resolved(name), resolved(dec)
                    if enc_seq != dec_seq:
                        report(dec, name, dec, enc_seq, dec_seq)
                    paired_decoders.add(dec)

    # --- dispatch decoders: per-case comparison against tag encoders ---
    for dec_name, seq in reader_seqs.items():
        if dec_name in paired_decoders:
            continue
        split = _split_dispatch(bodies[dec_name])
        if split is None:
            continue
        prefix_text, cases = split
        rd = _io_vars("", bodies[dec_name], "ByteReader") or \
            _io_vars(next(p for n, p, b, o in funcs if n == dec_name),
                     bodies[dec_name], "ByteReader")
        case_seqs = {lab: _splice(_extract_seq(text, rd, helper_names), raw_seqs)
                     for lab, text in cases.items()}
        if not any(case_seqs.values()):
            continue  # validation switch, not a dispatch decoder
        prefix_seq = _splice(_extract_seq(prefix_text, rd, helper_names), raw_seqs)
        # Pair each encoder with the tags its body mentions.
        for enc_name in writer_seqs:
            tags = set(re.findall(r"\b(?:[\w:]+::)?(k\w+)\b", bodies[enc_name]))
            hit = sorted(tags & set(case_seqs))
            for tag in hit:
                enc_seq = resolved(enc_name)
                want = prefix_seq + case_seqs[tag]
                if enc_seq and enc_seq != want:
                    report(dec_name, f"{enc_name} (tag {tag})", dec_name,
                           enc_seq, want)
    return findings


MEMBER_DECL_RE = re.compile(
    r"^\s*(?!return\b|using\b|static\b|friend\b|typedef\b|public|private|protected)"
    r"[\w:<>,\s&*]+?[\s&*](\w+)\s*(?:=[^;]*|\{[^;]*\})?;\s*$")


def _struct_members(src, struct):
    """Data-member names of `struct` as declared in `src`."""
    m = re.search(rf"\b(?:struct|class)\s+{struct}\b[^;{{]*\{{", src.text)
    if not m:
        return set()
    end = _skip_braces(src.text, src.text.index("{", m.start()))
    body = src.text[m.start():end]
    members = set()
    for line in body.splitlines():
        if "(" in line or ")" in line:
            continue
        dm = MEMBER_DECL_RE.match(line)
        if dm:
            members.add(dm.group(1))
    return members


def _check_text_codec(by_rel, fam):
    impl = by_rel.get(fam["impl"])
    if impl is None:
        return []
    members = set()
    for header_rel, struct in fam["structs"]:
        hdr = by_rel.get(header_rel)
        if hdr is not None:
            members |= _struct_members(hdr, struct)
    members -= set(fam.get("ignore", ()))
    if not members:
        return []
    funcs = {n: (b, o) for n, p, b, o in _extract_functions(impl.text)}

    def gather(fn_names, pattern_fn):
        got = set()
        for fn in fn_names:
            if fn not in funcs:
                continue
            body = funcs[fn][0]
            got |= pattern_fn(body)
        return got

    written = gather(fam["encode"],
                     lambda body: {w for w in members
                                   if re.search(rf"\b{re.escape(w)}\b", body)})
    assigned = gather(fam["decode"],
                      lambda body: {w for w in members if re.search(
                          rf"\b\w+\s*\.\s*{re.escape(w)}\s*"
                          rf"(?:=[^=]|\.push_back|\.emplace_back)", body)})
    findings = []
    anchor_fn = fam["decode"][0]
    lineno = impl.line_of(funcs[anchor_fn][1]) if anchor_fn in funcs else 1
    if impl.suppressed(lineno, "codec-symmetry"):
        return []
    for field in sorted(written - assigned):
        findings.append((impl.rel, lineno, "codec-symmetry",
                         f"{fam['name']}: field '{field}' is serialized by "
                         f"{'/'.join(fam['encode'])} but never assigned by "
                         f"{'/'.join(fam['decode'])} (lost on round-trip)"))
    for field in sorted(assigned - written):
        findings.append((impl.rel, lineno, "codec-symmetry",
                         f"{fam['name']}: field '{field}' is parsed by "
                         f"{'/'.join(fam['decode'])} but never written by "
                         f"{'/'.join(fam['encode'])} (phantom field)"))
    return findings


# --------------------------------------------------------------------------
# Pass 4: switch exhaustiveness.
# --------------------------------------------------------------------------

ENUM_DEF_RE = re.compile(r"\benum\s+class\s+(\w+)[^{;]*\{")
ENUMERATOR_RE = re.compile(r"^\s*(k\w+)\s*(?:=[^,}]*)?[,}]?", re.M)


def collect_enums(sources, wanted=None):
    wanted = wanted if wanted is not None else MESSAGE_ENUMS
    enums = {}
    for src in sources:
        for m in ENUM_DEF_RE.finditer(src.text):
            name = m.group(1)
            if name not in wanted:
                continue
            end = _skip_braces(src.text, src.text.index("{", m.start()))
            body = src.text[src.text.index("{", m.start()) + 1:end - 1]
            vals = []
            for line in body.splitlines():
                em = ENUMERATOR_RE.match(line)
                if em:
                    vals.append(em.group(1))
            if vals:
                enums[name] = vals
    return enums


def pass_switch_exhaustiveness(sources, enums=None):
    if enums is None:
        enums = collect_enums(sources)
    findings = []
    for src in sources:
        for m in re.finditer(r"\bswitch\s*\(", src.text):
            close = _matching_paren(src.text, src.text.index("(", m.start()))
            j = src.text.find("{", close)
            if j < 0:
                continue
            end = _skip_braces(src.text, j)
            body = src.text[j + 1:end - 1]
            labels = set(CASE_RE.findall(body))
            if not labels:
                continue
            # Which configured enum is this switch over? The one whose
            # enumerator set contains every label.
            owner = None
            for ename, vals in enums.items():
                if labels <= set(vals):
                    owner = ename
                    break
            if owner is None:
                continue
            lineno = src.line_of(m.start())
            if src.suppressed(lineno, "switch-exhaustive"):
                continue
            missing = [v for v in enums[owner] if v not in labels]
            if not missing:
                continue
            dm = re.search(r"\bdefault\s*:", body)
            if not dm:
                findings.append(
                    (src.rel, lineno, "switch-exhaustive",
                     f"switch over {owner} misses enumerators "
                     f"{', '.join(missing)} and has no default"))
                continue
            # Default present: it must be substantive (more than `break;`)
            # or carry a comment explaining why the rest is ignorable.
            default_body = body[dm.end():]
            nxt = CASE_RE.search(default_body)
            if nxt:
                default_body = default_body[:nxt.start()]
            code_only = strip_comments(default_body.splitlines())
            substance = "".join(code_only).replace("break;", "").strip(" \n\t}")
            # Raw text (with comments) for the reason check: find the raw
            # region via line numbers.
            start_line = src.line_of(j + 1 + dm.start())
            end_line = min(start_line + len(default_body.splitlines()) + 1,
                           len(src.raw))
            raw_region = "\n".join(src.raw[start_line - 1:end_line])
            has_comment = "//" in raw_region or "/*" in raw_region
            if not substance and not has_comment:
                findings.append(
                    (src.rel, lineno, "switch-exhaustive",
                     f"switch over {owner} misses {', '.join(missing)} behind a "
                     f"bare `default: break;` — handle them or comment why "
                     f"they are ignorable"))
    return findings


# --------------------------------------------------------------------------
# Pass 5: lock order.
# --------------------------------------------------------------------------
#
# The tree's concurrency discipline is annotation-driven (common/mutex.hpp):
# capability classes are declared with GMMCS_CAPABILITY, state carries
# GMMCS_GUARDED_BY, functions carry GMMCS_REQUIRES, and scopes take
# capabilities via MutexLock / .lock() / ExecContext::assert_held(). This
# pass builds the inter-procedural lock-acquisition graph from those
# annotations and rejects three bug classes clang's per-TU analysis cannot
# see tree-wide:
#
#   lock-order    A *blocking* acquisition (MutexLock scope, `.lock()`,
#                 a call into a GMMCS_ACQUIRE function) performed while
#                 another capability is held creates a directed edge
#                 held -> acquired, including transitively through calls
#                 (a function's may-acquire set propagates to callers that
#                 invoke it with something held; callback indirection is
#                 recorded with `gmmcs-lint: lock-order-calls(F, G)`).
#                 Any cycle in this graph is a potential deadlock; any
#                 edge that runs against the canonical LOCK_ORDER below is
#                 an inversion waiting for a second thread.
#                 ExecContext::assert_held() is NOT an acquisition (it
#                 blocks nothing), so mutual entry between two contexts on
#                 one serial lane — the BrokerNetwork <-> BrokerNode
#                 pattern — creates no edge and no false cycle.
#
#   guarded-by    Reading or writing a GMMCS_GUARDED_BY(cap) member in a
#                 function that neither holds `cap` at that point (via
#                 REQUIRES, an enclosing MutexLock/.lock(), or a prior
#                 assert_held()) nor is the owning class's constructor/
#                 destructor.
#
#   condvar-hold  `cv.wait(cap, ...)` in a scope that does not hold `cap`.
#
# Capabilities are matched by base name (`pool_mu_` in `loop.pool_mu_`):
# loose, but instance names are unique in this tree and the looseness is
# what lets REQUIRES(ctx_) in a header match `ctx_.assert_held()` in the
# TU. Lambdas are separate analysis scopes (clang analyzes them that way
# too): a lambda body holds only what its own head REQUIRES or its own
# body asserts/locks, and its acquisitions do not leak into the enclosing
# function's may-acquire set (they run when invoked, not here).

# Canonical tree-wide lock order, outermost first (DESIGN.md §11). Every
# capability *instance* found in src/ must appear here (completeness is
# checked, like LAYERS), and every acquisition edge must run left to
# right. EventLoop::pool_mu_ is the only blocking mutex in the tree and
# must stay the leaf: nothing may be acquired while it is held.
LOCK_ORDER = [
    "BrokerNetwork::ctx_",
    "BrokerNode::ctx_",
    "ServiceCenter::ctx_",
    "Network::ctx_",
    "Host::ctx_",
    "EventLoop::pool_mu_",
]

# Files that *define* the capability primitives; their members (e.g. the
# pthread handle inside Mutex) are not capability instances to rank.
LOCK_PRIMITIVE_FILES = {"src/common/mutex.hpp"}

CAPABILITY_CLASS_RE = re.compile(r"\b(?:class|struct)\s+GMMCS_CAPABILITY\s*\(")
CLASS_HEAD_RE = re.compile(
    r"\b(?:class|struct)\s+(?:(?:GMMCS_CAPABILITY|GMMCS_PINNED)\s*\([^)]*\)\s+)*"
    r"(?!GMMCS_)(\w+)(?:\s+final)?[^;{}()=]*\{")
LOCK_CALLS_RE = re.compile(
    r"gmmcs-lint:\s*lock-order-calls\(\s*([\w:~]+)\s*,\s*([\w:~]+)\s*\)")


def _scan_classes(text):
    """Yields (class_name, body_start, body_end, is_capability) for every
    class/struct definition (including nested) in `text`."""
    out = []
    for m in CLASS_HEAD_RE.finditer(text):
        head = m.group(0)
        if re.search(r"\benum\s+(?:class|struct)\b", text[max(0, m.start() - 8):m.end()]):
            continue
        open_idx = m.end() - 1
        end = _skip_braces(text, open_idx)
        out.append((m.group(1), open_idx + 1, end - 1,
                    bool(CAPABILITY_CLASS_RE.search(head))))
    return out


FUNC_SIG_RE = re.compile(
    r"(?P<name>(?:\w+::)*~?\w+)\s*\((?P<params>(?:[^()]|\([^()]*\))*)\)\s*"
    r"(?P<annos>(?:const|noexcept|final|override|->\s*[\w:<>]+|"
    r"GMMCS_\w+\s*\([^()]*\)|\s)*)$", re.S)

FUNC_KEYWORDS = {"if", "for", "while", "switch", "return", "catch", "do",
                 "sizeof", "decltype", "static_assert", "alignas", "new",
                 "delete", "throw", "assert"}


def _extract_functions_ctx(text, base_offset=0, cls=None):
    """Yields (cls, name, params, annos_text, body, body_offset) for every
    function definition in `text`, recursing into class bodies (unlike
    _extract_functions, which skips them — inline methods matter here).

    `params` is the raw parameter-list text; `annos_text` is everything
    between the closing param paren and the opening brace: const,
    GMMCS_REQUIRES(...), ctor init lists."""
    funcs = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c != "{":
            i += 1
            continue
        seg_start = max(text.rfind(";", 0, i), text.rfind("}", 0, i),
                        text.rfind("{", 0, i)) + 1
        seg = text[seg_start:i]
        # A `{` while the segment still has an unclosed `(` is a
        # brace-init inside an argument list (`Config{.x = 1}` in a ctor
        # init list), not a function body: step over it.
        if seg.count("(") > seg.count(")"):
            i = _skip_braces(text, i)
            continue
        # A segment that closes more parens than it opens began
        # mid-expression: the `}` before it ended a paren-nested
        # brace-init. Extend the segment back over that brace pair
        # (contents replaced by `{}` — only the shape matters here).
        while seg.count(")") > seg.count("(") and seg_start >= 1 \
                and text[seg_start - 1] == "}":
            depth, j = 0, seg_start - 1
            while j >= 0:
                if text[j] == "}":
                    depth += 1
                elif text[j] == "{":
                    depth -= 1
                    if depth == 0:
                        break
                j -= 1
            if j < 0:
                break
            new_start = max(text.rfind(";", 0, j), text.rfind("}", 0, j),
                            text.rfind("{", 0, j)) + 1
            seg = text[new_start:j] + "{}" + text[seg_start:i]
            seg_start = new_start
        if re.search(r"\bnamespace\b", seg):
            i += 1
            continue
        cm = CLASS_HEAD_RE.search(seg + "{")
        if cm and cm.end() == len(seg) + 1:
            end = _skip_braces(text, i)
            funcs.extend(_extract_functions_ctx(
                text[i + 1:end - 1], base_offset + i + 1, cm.group(1)))
            i = end
            continue
        if re.search(r"\b(?:struct|class|enum|union)\b[^()]*$", seg):
            # Non-capability plain aggregate (or enum): no methods inside
            # that we'd mis-parse; still recurse for nested structs with
            # methods — handled by the CLASS_HEAD_RE branch above. Enums
            # have no functions: skip.
            if re.search(r"\benum\b", seg):
                i = _skip_braces(text, i)
                continue
        # A function definition: `... name(params) [annos] {`.  Ctor init
        # lists look like `Name(...) : a_(x), b_(y) {` — try the split at
        # the first top-level `:` FIRST, because on the whole segment
        # FUNC_SIG_RE would latch onto the last init-list member call
        # (`b_(y)`) and report a "function" named `b_`.
        colon = _init_list_split(seg)
        if colon >= 0:
            m2 = FUNC_SIG_RE.search(seg[:colon])
            if m2 and m2.group("name") not in FUNC_KEYWORDS \
                    and not m2.group("name").startswith("GMMCS_"):
                end = _skip_braces(text, i)
                funcs.append((cls, m2.group("name"), m2.group("params"),
                              (m2.group("annos") or "") + seg[colon:],
                              text[i + 1:end - 1], base_offset + i + 1))
                i = end
                continue
        # Plain function: find the param list by scanning back from the
        # brace.
        m = FUNC_SIG_RE.search(seg)
        if m and m.group("name") not in FUNC_KEYWORDS \
                and not m.group("name").startswith("GMMCS_"):
            end = _skip_braces(text, i)
            funcs.append((cls, m.group("name"), m.group("params"),
                          m.group("annos") or "",
                          text[i + 1:end - 1], base_offset + i + 1))
            i = end
            continue
        i += 1
    return funcs


def _init_list_split(seg):
    """Index of a ctor init-list `:` in `seg` (not `::`, not inside parens),
    scanning left to right after the last `)`. -1 if none."""
    depth = 0
    i = 0
    n = len(seg)
    while i < n:
        c = seg[i]
        if c == "(":
            depth += 1
        elif c == ")":
            depth -= 1
        elif c == ":" and depth == 0:
            if i + 1 < n and seg[i + 1] == ":":
                i += 2
                continue
            if i > 0 and seg[i - 1] == ":":
                i += 1
                continue
            return i
        i += 1
    return -1


def _enclosing_scope_end(body, pos):
    """End offset (exclusive) of the innermost `{...}` scope containing
    `pos` in `body` — the extent of a scoped MutexLock declared at `pos`."""
    depth = 0
    for i in range(pos, len(body)):
        c = body[i]
        if c == "{":
            depth += 1
        elif c == "}":
            if depth == 0:
                return i
            depth -= 1
    return len(body)


LAMBDA_HEAD_RE = re.compile(
    r"\[[^\[\]]*\]\s*(?:\((?:[^()]|\([^()]*\))*\)\s*)?"
    r"(?P<annos>(?:mutable|noexcept|constexpr|->\s*[\w:<>]+|"
    r"GMMCS_\w+\s*\([^()]*\)|\s)*)\{")


def _split_lambdas(body, base_offset):
    """Carves lambda bodies out of `body`. Returns (outer, lambdas) where
    `outer` is `body` with lambda bodies blanked (length-preserving) and
    `lambdas` is a list of (annos_text, lambda_body, abs_offset)."""
    lambdas = []
    out = list(body)
    pos = 0
    while True:
        m = LAMBDA_HEAD_RE.search("".join(out), pos)
        if not m:
            break
        open_idx = m.end() - 1
        end = _skip_braces(body, open_idx)
        inner = body[open_idx + 1:end - 1]
        sub_outer, sub_lams = _split_lambdas(inner, base_offset + open_idx + 1)
        lambdas.append((m.group("annos") or "", sub_outer,
                        base_offset + open_idx + 1))
        lambdas.extend(sub_lams)
        for i in range(open_idx + 1, end - 1):
            if out[i] not in "\n":
                out[i] = " "
        pos = end
    return "".join(out), lambdas


def _base_cap(expr):
    """Base name of a capability expression: `loop.pool_mu_` -> `pool_mu_`,
    `this->ctx_` -> `ctx_`, `ctx_` -> `ctx_`, `*mu` -> `mu`."""
    expr = expr.strip().lstrip("*&").strip()
    expr = re.sub(r"\(\)$", "", expr)
    for sep in ("->", "."):
        if sep in expr:
            expr = expr.rsplit(sep, 1)[1]
    return expr.strip()


REQUIRES_RE = re.compile(r"GMMCS_(?:REQUIRES|ASSERT_CAPABILITY)\s*\(([^()]*)\)")
ACQUIRE_ANNO_RE = re.compile(r"GMMCS_ACQUIRE\s*\(([^()]*)\)")
GUARDED_RE = re.compile(
    r"^[^=/{}()]*[\s&*>](?P<member>\w+)\s*GMMCS_GUARDED_BY\s*\("
    r"(?P<cap>[^()]*)\)", re.M)
MUTEXLOCK_RE = re.compile(r"\bMutexLock\s+\w+\s*[({]\s*([^(){}]+?)\s*[)}]\s*;")
LOCK_CALL_RE = re.compile(r"\b([\w.\->]+?)\s*\.\s*lock\s*\(\s*\)")
ASSERT_HELD_RE = re.compile(r"\b([\w.\->]+?)\s*\.\s*assert_held\s*\(\s*\)")
CV_WAIT_RE = re.compile(r"\b[\w.\->]*?(\w+)\s*\.\s*wait\s*\(\s*([^,()]+)")
DECL_ANNO_RE = re.compile(
    r"(~?\w+)\s*\(((?:[^();]|\([^()]*\))*)\)\s*(?:const\s*)?"
    r"((?:GMMCS_\w+\s*\([^()]*\)\s*)+);", re.S)


class _LockModel:
    """Tree-wide model: capability classes, instances, guards, functions."""

    def __init__(self):
        self.cap_classes = set()       # class names declared GMMCS_CAPABILITY
        self.instances = {}            # (owner_cls, cap base) -> (rel, lineno)
        self.guards = {}               # member name -> {owner_cls: cap base}
        self.decl_requires = {}        # "Cls::fn" / "fn" -> set of cap bases
        self.decl_acquires = {}        # same, from GMMCS_ACQUIRE on decls
        self.extra_calls = {}          # fn key -> set of fn keys (lock-order-calls)
        self.extra_call_sites = []     # (src, lineno, caller, callee) per annotation
        self.functions = []            # (src, cls, name, params, annos, body, offset)
        self.classes = set()           # every class/struct name in the tree
        self.member_types = {}         # cls -> {member: (kind, element class)}
        self.parametric = {}           # fn key -> [(kind, param idx, param name)]


def _param_names(params):
    """Declared parameter names, in order, from a raw parameter-list
    string. A nameless parameter contributes None at its index."""
    names, depth, start, parts = [], 0, 0, []
    for i, c in enumerate(params):
        if c in "(<[{":
            depth += 1
        elif c in ")>]}":
            depth -= 1
        elif c == "," and depth == 0:
            parts.append(params[start:i])
            start = i + 1
    if params[start:].strip():
        parts.append(params[start:])
    for p in parts:
        p = p.split("=", 1)[0].strip()  # drop default argument
        # The name is the trailing identifier after a type separator; a
        # lone word (`int`, `Pred`) is an unnamed parameter's type.
        m = re.search(r"[\s&*>]\s*(\w+)\s*$", p)
        names.append(m.group(1) if m else None)
    return names


def _parametric_of(params, annos):
    """[(kind, idx, pname)] for every GMMCS_REQUIRES/GMMCS_ACQUIRE cap in
    `annos` whose base names a parameter — a parametric capability whose
    concrete identity is only known at each call site."""
    pnames = _param_names(params)
    out = []
    for kind, rx in (("requires", REQUIRES_RE), ("acquires", ACQUIRE_ANNO_RE)):
        for anno in rx.findall(annos):
            for cap in anno.split(","):
                base = _base_cap(cap)
                if base and base in pnames:
                    out.append((kind, pnames.index(base), base))
    return out


def _collect_model(sources, primitive_files):
    model = _LockModel()
    # Round 1: capability classes (they can be declared anywhere).
    for src in sources:
        for name, b0, b1, is_cap in _scan_classes(src.text):
            model.classes.add(name)
            if is_cap:
                model.cap_classes.add(name)
    model.member_types = _collect_member_types(sources, _ptr_aliases(sources))
    cap_alt = "|".join(sorted(model.cap_classes)) or r"(?!x)x"
    inst_re = re.compile(
        rf"^\s*(?:mutable\s+)?(?:gmmcs::)?(?:common::)?(?:{cap_alt})\s+"
        rf"(\w+)\s*(?:=[^;]*|\{{[^;]*\}})?\s*;", re.M)
    for src in sources:
        # lock-order-calls annotations live in raw comments.
        for idx, line in enumerate(src.raw):
            m = LOCK_CALLS_RE.search(line)
            if m:
                model.extra_calls.setdefault(m.group(1), set()).add(m.group(2))
                model.extra_call_sites.append(
                    (src, idx + 1, m.group(1), m.group(2)))
        for cls, b0, b1, is_cap in _scan_classes(src.text):
            body = src.text[b0:b1]
            # Capability instances: cap-typed members of non-primitive files.
            if src.rel not in primitive_files:
                for im in inst_re.finditer(body):
                    model.instances[(cls, im.group(1))] = (
                        src.rel, src.line_of(b0 + im.start(1)))
            # Guarded members.
            for gm in GUARDED_RE.finditer(body):
                model.guards.setdefault(gm.group("member"), {})[cls] = \
                    _base_cap(gm.group("cap"))
            # Declaration-only REQUIRES/ACQUIRE (prototypes ending in `;`).
            for dm in DECL_ANNO_RE.finditer(body):
                fname, fparams, annos = dm.group(1), dm.group(2), dm.group(3)
                key = f"{cls}::{fname}"
                para = _parametric_of(fparams, annos)
                pnames = {p for _k, _i, p in para}
                for pk in (key, fname):
                    if para:
                        model.parametric.setdefault(pk, para)
                # Parametric caps are resolved per call site, not here.
                reqs = {_base_cap(a) for a in REQUIRES_RE.findall(annos)}
                acqs = {_base_cap(a) for a in ACQUIRE_ANNO_RE.findall(annos)}
                if reqs - pnames:
                    model.decl_requires.setdefault(key, set()).update(
                        reqs - pnames)
                if acqs - pnames:
                    model.decl_acquires.setdefault(key, set()).update(
                        acqs - pnames)
        for cls, name, params, annos, body, off in \
                _extract_functions_ctx(src.text):
            model.functions.append((src, cls, name, params, annos, body, off))
            para = _parametric_of(params, annos)
            if para:
                for pk in _fn_keys(cls, name):
                    model.parametric.setdefault(pk, para)
    return model


def _fn_keys(cls, name):
    keys = [name]
    if "::" in name:
        keys.append(name.rsplit("::", 1)[1])
        return [name, name.rsplit("::", 1)[1]]
    if cls:
        keys.insert(0, f"{cls}::{name}")
    return keys


def _scope_events(body):
    """Acquisition/hold events in a (lambda-blanked) function body.

    Returns (holds, acquires, waits, accesses):
      holds    — list of (cap, start, end) intervals where cap is held
                 (MutexLock scope, .lock() to end, assert_held to end)
      acquires — list of (cap, pos, blocking) acquisition events
      waits    — list of (cv_cap_expr, pos) from CondVar .wait(cap, ...)
    """
    holds = []
    acquires = []
    waits = []
    for m in MUTEXLOCK_RE.finditer(body):
        cap = _base_cap(m.group(1))
        end = _enclosing_scope_end(body, m.start())
        holds.append((cap, m.end(), end))
        acquires.append((cap, m.start(), True))
    for m in LOCK_CALL_RE.finditer(body):
        cap = _base_cap(m.group(1))
        holds.append((cap, m.end(), len(body)))
        acquires.append((cap, m.start(), True))
    for m in ASSERT_HELD_RE.finditer(body):
        cap = _base_cap(m.group(1))
        holds.append((cap, m.end(), len(body)))
        # assert_held is NOT an acquisition: it blocks nothing.
    for m in CV_WAIT_RE.finditer(body):
        waits.append((_base_cap(m.group(2)), m.start()))
    return holds, acquires, waits


def _call_args(body, open_pos):
    """Argument texts of the call whose `(` is at `open_pos`, split at
    top-level commas (nested parens/brackets/braces respected)."""
    depth, start, args = 0, open_pos + 1, []
    i, n = open_pos, len(body)
    while i < n:
        c = body[i]
        if c in "([{":
            depth += 1
        elif c in ")]}":
            depth -= 1
            if depth == 0:
                if body[start:i].strip() or args:
                    args.append(body[start:i].strip())
                return args
        elif c == "," and depth == 1:
            args.append(body[start:i].strip())
            start = i + 1
        i += 1
    return args


def _receiver_type(recv, sc, model, pos):
    """Declared class of receiver identifier `recv` inside scope `sc`:
    `this`, a data member of the scope's class, a parameter, or a local
    declaration before `pos`. None when unresolvable (the caller then
    falls back to the tree-wide-unique-guard rule)."""
    if recv is None:
        return None
    if recv == "this":
        return sc["cls"]
    mem = model.member_types.get(sc["cls"], {}).get(recv)
    if mem and mem[1]:
        return mem[1]
    decl_re = re.compile(
        r"\b([A-Za-z_][\w:]*)\s*(?:<[^<>]*>)?\s*[&*]*\s+"
        + re.escape(recv) + r"\b")
    m = decl_re.search(sc["params"] or "")
    if m is None:
        last = None
        for lm in decl_re.finditer(sc["body"][:pos]):
            last = lm
        m = last
    if m is None:
        return None
    return m.group(1).rsplit("::", 1)[-1]


def pass_lock_order(sources, lock_order=None, primitive_files=None):
    lock_order = lock_order if lock_order is not None else LOCK_ORDER
    primitive_files = (primitive_files if primitive_files is not None
                       else LOCK_PRIMITIVE_FILES)
    findings = []
    model = _collect_model(sources, primitive_files)

    rank = {}
    base_counts = {}
    for qual in lock_order:
        base_counts[qual.rsplit("::", 1)[-1]] = \
            base_counts.get(qual.rsplit("::", 1)[-1], 0) + 1
    for i, qual in enumerate(lock_order):
        rank[qual] = i
        base = qual.rsplit("::", 1)[-1]
        if base_counts[base] == 1:  # unique base name: allow bare lookup
            rank.setdefault(base, i)

    # cap base -> owning classes; used to qualify a bare name when the
    # scope's own class doesn't define it (unique owner) or to leave it
    # bare (ambiguous — rank lookup then falls back to the base name).
    owners_of = {}
    for (owner, cap) in model.instances:
        owners_of.setdefault(cap, set()).add(owner)

    def qualify(cap, cls):
        if cls is not None and (cls, cap) in model.instances:
            return f"{cls}::{cap}"
        owners = owners_of.get(cap, ())
        if len(owners) == 1:
            return f"{next(iter(owners))}::{cap}"
        return cap

    # Config completeness: every discovered instance must be ranked; every
    # LOCK_ORDER entry must exist.
    for (owner, cap), (rel, lineno) in sorted(model.instances.items()):
        qual = f"{owner}::{cap}"
        if qual not in rank:
            findings.append((rel, lineno, "lock-order",
                             f"capability instance '{qual}' is not in "
                             f"LOCK_ORDER (add it to gmmcs_lint.py at its "
                             f"place in the canonical order)"))
    # (Skipped when the tree declares no GMMCS_CAPABILITY classes at all —
    # then the annotation system isn't in use and the list is aspirational.)
    if model.cap_classes:
        known_quals = {f"{o}::{c}" for (o, c) in model.instances}
        for qual in lock_order:
            if qual not in known_quals:
                findings.append(("tools/lint/gmmcs_lint.py", 1, "lock-order",
                                 f"LOCK_ORDER entry '{qual}' matches no "
                                 f"capability instance in the tree (stale?)"))

    # ---- Per-function scope analysis. ----
    # Scopes: every function body (lambdas blanked) plus every lambda as
    # its own scope. Each scope gets (src, keys, held-intervals, acquires,
    # waits, body, base_offset, cls, is_ctor).
    scopes = []
    for src, cls, name, params, annos, body, off in model.functions:
        outer, lambdas = _split_lambdas(body, off)
        keys = _fn_keys(cls, name)
        if cls is None and "::" in name:
            # Out-of-line member definition: recover the owning class so
            # guarded-member and capability lookups work in the body (and
            # in its lambdas, which inherit this class).
            cls = name.rsplit("::", 1)[0].rsplit("::", 1)[-1]
        reqs = {_base_cap(a) for a in REQUIRES_RE.findall(annos)}
        for k in keys:
            reqs |= model.decl_requires.get(k, set())
        acq_anno = set()
        for k in keys:
            acq_anno |= model.decl_acquires.get(k, set())
        is_ctor = cls is not None and (name == cls or name == f"~{cls}"
                                       or name.lstrip("~") == cls)
        if "::" in name:
            tail = name.rsplit("::", 1)
            if tail[1].lstrip("~") == tail[0].rsplit("::", 1)[-1]:
                is_ctor = True
        scopes.append(dict(src=src, keys=keys, reqs=reqs, acq_anno=acq_anno,
                           body=outer, off=off, cls=cls, name=name,
                           is_ctor=is_ctor, annos=annos, params=params))
        for lam_annos, lam_body, lam_off in lambdas:
            lreqs = {_base_cap(a) for a in REQUIRES_RE.findall(lam_annos)}
            scopes.append(dict(src=src, keys=[], reqs=lreqs, acq_anno=set(),
                               body=lam_body, off=lam_off, cls=cls,
                               name=f"{name}::<lambda>", is_ctor=False,
                               annos=lam_annos, params=""))

    # may_acquire fixpoint: which capabilities can a call into fn key end
    # up blocking-acquiring (directly or transitively)?
    may_acquire = {}
    direct_calls = {}  # primary key -> called identifiers
    call_re = re.compile(r"\b([A-Za-z_]\w*)\s*\(")
    for sc in scopes:
        holds, acquires, waits = _scope_events(sc["body"])
        sc["holds"] = holds
        sc["acquires"] = acquires
        sc["waits"] = waits
        if not sc["keys"]:
            continue  # lambdas don't propagate to callers
        primary = sc["keys"][0]
        # Parametric capabilities (GMMCS_ACQUIRE(mu) where `mu` is a
        # parameter) are bound to a concrete instance per call site, not
        # here — propagating the bare parameter name would attach one
        # callee's acquisitions to every caller under a meaningless key.
        para_names = {p for _k, _i, p in model.parametric.get(primary, ())}
        acq = {qualify(cap, sc["cls"])
               for cap, _p, blocking in acquires
               if blocking and cap not in para_names}
        acq |= {qualify(cap, sc["cls"]) for cap in sc["acq_anno"]
                if cap not in para_names}
        may_acquire.setdefault(primary, set()).update(acq)
        called = set(call_re.findall(sc["body"])) - FUNC_KEYWORDS
        for k in sc["keys"]:
            called |= model.extra_calls.get(k, set())
        direct_calls[primary] = called
    # Alias map: short name -> primary keys it may refer to.
    alias = {}
    for sc in scopes:
        for k in sc["keys"]:
            alias.setdefault(k, set()).add(sc["keys"][0])
            alias.setdefault(k.rsplit("::", 1)[-1], set()).add(sc["keys"][0])
    # Stale lock-order-calls annotations: an operand that resolves to no
    # function definition injects no edges — silently, which is how a
    # rename at a SmallFn/callback registration site used to disable the
    # very analysis the annotation exists for. Both operands must resolve.
    for src, lineno, caller, callee in model.extra_call_sites:
        for role, ident in (("caller", caller), ("callee", callee)):
            if ident in alias or src.suppressed(lineno, "lock-order"):
                continue
            findings.append(
                (src.rel, lineno, "lock-order",
                 f"lock-order-calls {role} '{ident}' matches no function "
                 f"definition in the tree — the stale annotation silently "
                 f"drops acquisition-graph edges (rename it to match the "
                 f"current registration site)"))
    changed = True
    while changed:
        changed = False
        for fn, called in direct_calls.items():
            for callee in called:
                for target in alias.get(callee, ()):
                    extra = may_acquire.get(target, set()) - may_acquire[fn]
                    if extra:
                        may_acquire[fn] |= extra
                        changed = True

    # ---- Edge construction + rank/cycle checks. ----
    edges = {}  # (held_qual, acquired_qual) -> (rel, lineno)

    def add_edge(held, acquired, src, pos, cls):
        held_q, acq_q = qualify(held, cls), qualify(acquired, cls)
        if held_q == acq_q:
            return
        edges.setdefault((held_q, acq_q), (src.rel, src.line_of(pos)))

    for sc in scopes:
        src = sc["src"]
        base = sc["off"]
        # Intervals where each cap is held: REQUIRES covers whole body.
        held_iv = [(cap, 0, len(sc["body"])) for cap in sc["reqs"]]
        held_iv += sc["holds"]

        def held_at(pos, held_iv=held_iv):
            return {cap for cap, s, e in held_iv if s <= pos < e}

        # Direct blocking acquisitions while something is held.
        for cap, pos, blocking in sc["acquires"]:
            if not blocking:
                continue
            for h in held_at(pos):
                add_edge(h, cap, src, base + pos, sc["cls"])
        # Transitive: calls into functions that may blocking-acquire.
        for m in call_re.finditer(sc["body"]):
            callee = m.group(1)
            if callee in FUNC_KEYWORDS:
                continue
            targets = alias.get(callee, ())
            acq = set()
            for t in targets:
                acq |= may_acquire.get(t, set())
            if not acq:
                continue
            held_here = held_at(m.start())
            for h in held_here:
                for a in acq:
                    add_edge(h, a, src, base + m.start(), sc["cls"])
        # Parametric capabilities: a callee annotated GMMCS_REQUIRES(mu)/
        # GMMCS_ACQUIRE(mu) where `mu` names one of its own parameters
        # binds to a different concrete instance at every call site, so
        # rank the substituted actual argument here.  `wait` is skipped:
        # CondVar::wait is exactly this shape, but the condvar-hold rule
        # below performs the same substitution with better diagnostics.
        for m in call_re.finditer(sc["body"]):
            callee = m.group(1)
            para = model.parametric.get(callee)
            if not para or callee == "wait" or callee in FUNC_KEYWORDS:
                continue
            args = _call_args(sc["body"], m.end() - 1)
            held_here = held_at(m.start())
            for kind, idx, pname in para:
                if idx >= len(args):
                    continue
                subst = _base_cap(args[idx])
                if not re.fullmatch(r"\w+", subst):
                    continue
                subst_q = qualify(subst, sc["cls"])
                if subst not in owners_of and subst_q not in rank \
                        and subst not in rank:
                    continue  # actual argument isn't a known capability
                if kind == "acquires":
                    # Calling blocking-acquires the substituted instance.
                    for h in held_here:
                        add_edge(h, subst, src, base + m.start(), sc["cls"])
                else:  # requires: caller must already hold the instance
                    if subst not in held_here:
                        lineno = src.line_of(base + m.start())
                        if not src.suppressed(lineno, "lock-order"):
                            findings.append(
                                (src.rel, lineno, "lock-order",
                                 f"call to '{callee}' substitutes "
                                 f"'{subst_q}' for its GMMCS_REQUIRES"
                                 f"({pname}) parameter, but {sc['name']} "
                                 f"does not hold '{subst_q}' here"))
                    # The callee runs with the instance held: its further
                    # acquisitions rank against the substituted cap.
                    for t in alias.get(callee, ()):
                        for a in may_acquire.get(t, ()):
                            add_edge(subst, a, src, base + m.start(),
                                     sc["cls"])
        # GMMCS_ACQUIRE-annotated functions: body acquires its annotation
        # even without a visible MutexLock (wrapper functions).
        for cap in sc["acq_anno"]:
            for h in sc["reqs"]:
                add_edge(h, cap, src, base, sc["cls"])

    # Rank violations.
    for (held, acquired), (rel, lineno) in sorted(edges.items()):
        src = next((s for s in sources if s.rel == rel), None)
        if src is not None and src.suppressed(lineno, "lock-order"):
            continue
        rh = rank.get(held, rank.get(_base_cap(held.rsplit("::", 1)[-1])))
        ra = rank.get(acquired, rank.get(_base_cap(acquired.rsplit("::", 1)[-1])))
        if rh is None or ra is None:
            continue  # unknown instance already reported above
        if rh >= ra:
            findings.append((rel, lineno, "lock-order",
                             f"acquisition of '{acquired}' while holding "
                             f"'{held}' runs against the canonical lock "
                             f"order ({' -> '.join(lock_order)})"))
    # Cycles (catches deadlocks even among unranked/parametric caps).
    graph = {}
    for (a, b) in edges:
        graph.setdefault(a, set()).add(b)
    state, stack = {}, []

    def dfs(node):
        state[node] = 0
        stack.append(node)
        for nxt in sorted(graph.get(node, ())):
            if state.get(nxt) == 0:
                cycle = stack[stack.index(nxt):] + [nxt]
                rel, lineno = edges[(node, nxt)]
                src = next((s for s in sources if s.rel == rel), None)
                if not (src and src.suppressed(lineno, "lock-order")):
                    findings.append((rel, lineno, "lock-order",
                                     "lock acquisition cycle (potential "
                                     "deadlock): " + " -> ".join(cycle)))
            elif nxt not in state:
                dfs(nxt)
        stack.pop()
        state[node] = 1

    for node in sorted(graph):
        if node not in state:
            dfs(node)

    # ---- guarded-by: member access without the guard held. ----
    guard_names = set(model.guards)
    if guard_names:
        bare_re = re.compile(
            r"(?<![\w.>])(" + "|".join(sorted(guard_names)) + r")\b(?!\s*\()")
        pref_re = re.compile(
            r"(?:\b(?P<recv>\w+)\s*)?(?:\.|->)\s*(?P<member>"
            + "|".join(sorted(guard_names)) + r")\b(?!\s*\()")
        for sc in scopes:
            src = sc["src"]
            base = sc["off"]
            if sc["is_ctor"]:
                continue
            held_iv = [(cap, 0, len(sc["body"])) for cap in sc["reqs"]]
            held_iv += sc["holds"]

            def held_at(pos, held_iv=held_iv):
                return {cap for cap, s, e in held_iv if s <= pos < e}

            own_cls = sc["cls"]
            hits = []
            if own_cls is not None:
                for m in bare_re.finditer(sc["body"]):
                    member = m.group(1)
                    cap = model.guards[member].get(own_cls)
                    if cap is None:
                        continue  # same-named member of another class
                    hits.append((member, cap, m.start()))
            for m in pref_re.finditer(sc["body"]):
                member = m.group("member")
                owners = model.guards[member]
                rtype = _receiver_type(m.group("recv"), sc, model, m.start())
                if rtype is not None and rtype in owners:
                    # Receiver's declared class guards this member: check
                    # against that owner's capability specifically.
                    hits.append((member, owners[rtype], m.start("member")))
                    continue
                if rtype is not None and rtype in model.classes:
                    continue  # resolved class doesn't guard this member
                caps = set(owners.values())
                if len(caps) != 1:
                    continue  # type unknown, guard ambiguous: skip
                hits.append((member, next(iter(caps)), m.start("member")))
            for member, cap, pos in hits:
                if cap in held_at(pos):
                    continue
                lineno = src.line_of(base + pos)
                if src.suppressed(lineno, "guarded-by"):
                    continue
                findings.append(
                    (src.rel, lineno, "guarded-by",
                     f"access to '{member}' (GMMCS_GUARDED_BY({cap})) in "
                     f"{sc['name']} which neither holds '{cap}' here nor "
                     f"declares GMMCS_REQUIRES({cap})"))

    # ---- condvar-hold. ----
    for sc in scopes:
        src = sc["src"]
        base = sc["off"]
        held_iv = [(cap, 0, len(sc["body"])) for cap in sc["reqs"]]
        held_iv += sc["holds"]
        for cap, pos in sc["waits"]:
            if cap in {"", "0"} or not re.match(r"^\w+$", cap):
                continue
            if cap not in owners_of and cap not in rank:
                continue  # .wait() on something that isn't a capability
            if any(s <= pos < e for c, s, e in held_iv if c == cap):
                continue
            lineno = src.line_of(base + pos)
            if src.suppressed(lineno, "condvar-hold"):
                continue
            findings.append(
                (src.rel, lineno, "condvar-hold",
                 f"condition-variable wait on '{cap}' in {sc['name']} "
                 f"without holding '{cap}'"))

    # De-duplicate (same site can be hit via multiple scopes).
    return sorted(set(findings))


# --------------------------------------------------------------------------
# Pass 6: snapshot discipline.
# --------------------------------------------------------------------------
#
# The epoch-snapshot control plane (DESIGN.md §12) publishes immutable
# snapshot objects through one atomic shared_ptr; dispatch paths load the
# current epoch lock-free and read it with no synchronization at all. The
# scheme is sound only while three invariants hold, and none of them is
# compiler-enforced once a const_cast or a stray non-const handle slips in:
#
#   snapshot-type         snapshot types stay structurally immutable: no
#                         `mutable` members and no non-const methods
#                         (constructors/destructors aside). A mutable
#                         match cache, say, would be a data race under
#                         concurrent lock-free readers.
#
#   snapshot-mutation     outside a writer scope, code holds only const
#                         handles to snapshot types (`shared_ptr<const T>`,
#                         `const T&`). A non-const handle — including
#                         make_shared<T> while a writer builds the next
#                         epoch — is writer-only, and casting constness
#                         away from a snapshot type is never legal, in any
#                         scope.
#
#   snapshot-publication  an atomic snapshot-pointer member is written
#                         (.store / .exchange / assignment) from writer
#                         scopes only; readers only .load().
#
# A scope counts as a *writer* from the point it provably runs under a
# capability: it declares GMMCS_REQUIRES(...) (on the definition or its
# header declaration) or has executed `.assert_held()`. That is the same
# serial-writer-context notion the lock-order pass uses; in this tree every
# snapshot writer runs under BrokerNetwork::ctx_.

# Class names forming the immutable snapshot surface. Like LOCK_ORDER,
# edit here when a new snapshot type is introduced.
SNAPSHOT_TYPES = [
    "ControlSnapshot",
    "RouteTables",
    "InterestTable",
]


def _blank_braced(text):
    """Length-preserving copy of `text` with the interiors of all brace
    groups blanked (newlines kept): leaves only top-level declarations."""
    out = list(text)
    depth = 0
    for i, c in enumerate(text):
        if c == "{":
            depth += 1
        elif c == "}":
            depth -= 1
        elif depth > 0 and c != "\n":
            out[i] = " "
    return "".join(out)


SNAP_METHOD_DECL_RE = re.compile(
    r"(~?\w+)\s*\(((?:[^();]|\([^()]*\))*)\)\s*"
    r"(?P<annos>(?:const|noexcept|final|override|->\s*[\w:<>]+|"
    r"GMMCS_\w+\s*\([^()]*\)|\s)*);")
SNAP_MUTABLE_RE = re.compile(r"^[ \t]*mutable\b", re.M)


def pass_snapshot(sources, snapshot_types=None, primitive_files=None):
    snapshot_types = (snapshot_types if snapshot_types is not None
                      else SNAPSHOT_TYPES)
    primitive_files = (primitive_files if primitive_files is not None
                       else LOCK_PRIMITIVE_FILES)
    findings = []
    if not snapshot_types:
        return findings
    # Cheap prefilter: fixture trees (and most modules) never mention a
    # snapshot type, so skip the model build entirely.
    if not any(t in src.text for src in sources for t in snapshot_types):
        return findings

    def emit(src, lineno, rule, msg):
        if not src.suppressed(lineno, rule):
            findings.append((src.rel, lineno, rule, msg))

    type_alt = "|".join(re.escape(t) for t in sorted(snapshot_types))
    cast_re = re.compile(
        rf"\b(?:const_cast|const_pointer_cast)\s*<[^<>;]*\b(?:{type_alt})\b")
    # Non-const handles: owning pointers to a mutable T, or T&/T* not
    # preceded by const. `shared_ptr<const T>` fails the match by
    # construction; the ref/pointer alternative checks its prefix below.
    handle_re = re.compile(
        rf"\b(?:std::)?(?:make_shared|make_unique|shared_ptr|unique_ptr)"
        rf"\s*<\s*(?:{type_alt})\s*>"
        rf"|\b(?:{type_alt})\s*(?:[&*]\s*)+\w")
    atomic_member_re = re.compile(
        rf"std::atomic\s*<\s*(?:std::shared_ptr\s*<\s*const\s+(?:{type_alt})"
        rf"\s*>|(?:{type_alt})Ptr)\s*>\s+(\w+)")

    def nonconst_handle_hits(text):
        for m in handle_re.finditer(text):
            if re.search(r"\bconst\s*$", text[:m.start()]):
                continue  # `const T&` / `const T*`: a reader handle
            yield m

    # ---- snapshot-type: structural immutability of the types. ----
    for src in sources:
        for cls, b0, b1, _cap in _scan_classes(src.text):
            if cls not in snapshot_types:
                continue
            top = _blank_braced(src.text[b0:b1])
            for m in SNAP_MUTABLE_RE.finditer(top):
                emit(src, src.line_of(b0 + m.start()), "snapshot-type",
                     f"snapshot type '{cls}' declares a mutable member — "
                     f"a data race under concurrent lock-free readers")
            for m in SNAP_METHOD_DECL_RE.finditer(top):
                name = m.group(1)
                if name.lstrip("~") == cls:
                    continue  # ctor/dtor declaration
                seg_start = max(top.rfind(";", 0, m.start()),
                                top.rfind("{", 0, m.start()),
                                top.rfind("}", 0, m.start())) + 1
                seg = top[seg_start:m.start()]
                if re.search(r"\b(?:static|friend|using|typedef)\b", seg):
                    continue
                if not re.search(r"[\w>&*\]]\s*$", seg):
                    continue  # no return type before it: not a declaration
                if re.search(r"\bconst\b", m.group("annos")):
                    continue
                emit(src, src.line_of(b0 + m.start()), "snapshot-type",
                     f"snapshot type '{cls}' declares non-const method "
                     f"'{name}' — published epochs must be immutable")

    # ---- Writer-scope analysis over every function body and lambda. ----
    model = _collect_model(sources, primitive_files)

    def recover_signature(src, name, annos, off):
        """The signature segment before the body brace, plus the real
        function name: _extract_functions_ctx reads `Ctor(...) :
        member(init) {` as a function named `member`, so ctors need their
        name recovered from the text."""
        brace = off - 1
        seg_start = max(src.text.rfind(";", 0, brace),
                        src.text.rfind("}", 0, brace),
                        src.text.rfind("{", 0, brace)) + 1
        raw_seg = src.text[seg_start:brace]
        seg = re.sub(r"\b(?:public|private|protected)\s*:", " ", raw_seg)
        colon = _init_list_split(seg)
        if colon >= 0:
            m = FUNC_SIG_RE.search(seg[:colon])
            if m and m.group("name") not in FUNC_KEYWORDS:
                return m.group("name"), (m.group("annos") or ""), \
                    seg_start, raw_seg
        return name, annos, seg_start, raw_seg

    functions = []
    for src, cls, name, params, annos, fbody, off in model.functions:
        name, annos, sig_off, sig = recover_signature(src, name, annos, off)
        functions.append((src, cls, name, annos, fbody, off, sig_off, sig))

    # snapshot-type, definitions: inline and out-of-line method bodies of
    # snapshot types (the declaration scan above only sees prototypes).
    for src, cls, name, annos, _fbody, off, _soff, _sig in functions:
        owner = cls
        tail = name
        if "::" in name:
            owner, tail = name.rsplit("::", 1)
            owner = owner.rsplit("::", 1)[-1]
        if owner not in snapshot_types:
            continue
        if tail.lstrip("~") == owner:
            continue  # ctor/dtor
        if re.search(r"\bconst\b", annos):
            continue
        emit(src, src.line_of(off), "snapshot-type",
             f"snapshot type '{owner}' defines non-const method '{tail}' — "
             f"published epochs must be immutable")

    atomic_members = set()
    for src in sources:
        for m in atomic_member_re.finditer(src.text):
            atomic_members.add(m.group(1))
    store_re = None
    if atomic_members:
        mem_alt = "|".join(sorted(atomic_members))
        store_re = re.compile(
            rf"\b({mem_alt})\s*(?:\.\s*(?:store|exchange)\s*\(|=(?!=))")

    scopes = []
    for src, cls, name, annos, fbody, off, sig_off, sig in functions:
        outer, lambdas = _split_lambdas(fbody, off)
        reqs = set(REQUIRES_RE.findall(annos))
        for k in _fn_keys(cls, name):
            reqs |= model.decl_requires.get(k, set())
        is_snap_method = (cls in snapshot_types
                          or ("::" in name and
                              name.rsplit("::", 2)[-2] in snapshot_types))
        scopes.append((src, name, outer, off, bool(reqs),
                       is_snap_method, sig_off, sig))
        for lam_annos, lam_body, lam_off in lambdas:
            scopes.append((src, f"{name}::<lambda>", lam_body, lam_off,
                           bool(REQUIRES_RE.findall(lam_annos)),
                           False, 0, ""))

    for src, name, body, off, writer, is_snap_method, sig_off, sig in scopes:
        # Writer status begins at the first assert_held() when there is no
        # REQUIRES: code before the assert is still reader-side.
        writer_from = 0 if writer else None
        if writer_from is None:
            am = ASSERT_HELD_RE.search(body)
            if am:
                writer_from = am.end()

        def in_writer(pos, writer_from=writer_from):
            return writer_from is not None and pos >= writer_from

        # snapshot-mutation: const_cast is never legal, handles only in
        # writer scopes.
        for m in cast_re.finditer(body):
            emit(src, src.line_of(off + m.start()), "snapshot-mutation",
                 f"casting constness away from a snapshot type in {name} — "
                 f"published epochs are immutable; build a new one under "
                 f"the writer context instead")
        if not is_snap_method:
            for m in nonconst_handle_hits(body):
                if in_writer(m.start()):
                    continue
                emit(src, src.line_of(off + m.start()), "snapshot-mutation",
                     f"non-const handle to a snapshot type in {name}, which "
                     f"is not a writer scope (no GMMCS_REQUIRES, no prior "
                     f"assert_held) — readers must hold const handles")
            # The signature too: a non-const snapshot parameter or return
            # is reader-side mutation access unless the function is a
            # REQUIRES-annotated writer.
            if not writer:
                for m in nonconst_handle_hits(sig):
                    emit(src, src.line_of(sig_off + m.start()),
                         "snapshot-mutation",
                         f"non-const handle to a snapshot type in the "
                         f"signature of {name}, which is not a writer scope "
                         f"— take shared_ptr<const T>/const T& instead")
        # snapshot-publication: atomic snapshot pointer written outside a
        # writer scope.
        if store_re is not None:
            for m in store_re.finditer(body):
                if in_writer(m.start()):
                    continue
                emit(src, src.line_of(off + m.start()),
                     "snapshot-publication",
                     f"atomic snapshot pointer '{m.group(1)}' written in "
                     f"{name}, which is not a writer scope — publication "
                     f"must happen under the writer context only")

    # Non-const handles in class bodies (member/prototype declarations):
    # a member that keeps a mutable handle to a snapshot type defeats the
    # shared_ptr<const> reclamation contract no matter who touches it.
    for src in sources:
        for cls, b0, b1, _cap in _scan_classes(src.text):
            if cls in snapshot_types:
                continue  # the types' own internals are rule-1 territory
            top = _blank_braced(src.text[b0:b1])
            for m in nonconst_handle_hits(top):
                emit(src, src.line_of(b0 + m.start()), "snapshot-mutation",
                     f"non-const snapshot handle declared in class '{cls}' "
                     f"— hold shared_ptr<const T>/const T& instead and "
                     f"build new epochs from locals in the writer")

    return sorted(set(findings))


# --------------------------------------------------------------------------
# Driver.
# --------------------------------------------------------------------------

# --------------------------------------------------------------------------
# Pass 7: deferred-capture lifetime analysis.
# --------------------------------------------------------------------------
#
# The broker fabric is a system of deferred work: every event, fan-out
# job, keepalive probe and reconnect hook is a callable handed to the
# event loop (or parked in a callback slot) and run later, when the
# stack frame that built it is long gone. PR 7's chaos generator showed
# what that costs when a capture outlives its object: the deferred kPing
# pong job captured a raw StreamConnection* that ghost eviction freed
# before the job ran (an ASan use-after-free, replayed today by
# tests/lifetime_regression_test.cpp and the kping fixture in
# tools/lint/tests/test_lifetime.py). This pass makes the bug class
# statically checked (DESIGN.md §14):
#
#   1. Sink inventory. The seed sinks are the deferred-execution entry
#      points (EventLoop::schedule_at/schedule_after/post_effect,
#      ServiceCenter::submit/submit_batch). A may-defer fixpoint — the
#      same shape as the pass-5 may_acquire fixpoint — then grows the
#      set: a function that stores a callable-typed parameter (SmallFn /
#      Callback / std::function / their aliases) into a member, a
#      container, or a ctor init list, or forwards it into a known sink,
#      is itself a sink (on_message, on_accept, bind, on_disconnect,
#      on_route_repair, PeriodicTask's ctor, SmallFn's own ctor, ...).
#
#   2. Capture classification. Every lambda at a sink call site (an
#      inline literal or a named local passed by name) has each capture
#      classified by declaration lookup through the enclosing function's
#      signature, its body, and the owning class's member types: owned
#      values and shared_ptr/weak_ptr copies are safe; `[&]`, `[=]` in a
#      member function, `&x`, `this`, and raw pointers escape and must
#      be justified.
#
#   3. Justifications. An escaping capture is legal when the captured
#      object provably outlives the deferral:
#        - its class is GMMCS_PINNED("reason"): lifetime pinned to the
#          run (Network, Host, EventLoop, the broker/server objects) —
#          the reason string is mandatory;
#        - registration-on-self: the raw pointer is derived from the
#          very object the callable is stored on
#          (conn->on_message([this, raw = conn.get()] ...));
#        - cancel-discipline: the sink's TaskId lands in a member and
#          the owning class cancels that member somewhere (the
#          syn_timer_ / PeriodicTask::stop shape);
#        - release-discipline: a bind-style sink whose captured object's
#          class also calls unbind (the port-table handler is released
#          by the object's own teardown path).
#      Everything else is a finding. `--fix` rewrites a raw capture
#      whose source is a shared_ptr into the weak_ptr + lock + early-
#      return shape of the PR 7 kPing fix, idempotently.

DEFER_SINKS = {"schedule_at", "schedule_after", "post_effect",
               "submit", "submit_batch"}

# Sink method names that register a datagram handler in a port table
# owned by someone else; the release-discipline carve-out applies.
BIND_SINKS = {"bind", "bind_ephemeral"}

PINNED_CLASS_RE = re.compile(
    r"\b(?:class|struct)\s+(?:GMMCS_CAPABILITY\s*\([^)]*\)\s+)?"
    r"GMMCS_PINNED\s*\(\s*(?:\"(?P<reason>[^\"]*)\")?\s*\)\s*"
    r"(?P<name>\w+)")

# Fix records produced by the last pass_lifetime run, consumed by
# apply_fixes: dicts with rel/lineno/old/new/var/weak.
LIFETIME_FIXES = []


def _signature_text(text, body_off):
    """The declarator text of the function whose body starts at
    `body_off` (everything from the previous ;/}/{ to the open brace):
    return type, name, parameter list, annotations, ctor init list."""
    brace = body_off - 1
    seg_start = max(text.rfind(";", 0, brace), text.rfind("}", 0, brace),
                    text.rfind("{", 0, brace)) + 1
    return text[seg_start:brace]


def _matching_bracket(text, open_idx):
    """Index just past the `]` matching the `[` at open_idx."""
    depth = 0
    for i in range(open_idx, len(text)):
        if text[i] == "[":
            depth += 1
        elif text[i] == "]":
            depth -= 1
            if depth == 0:
                return i + 1
    return len(text)


def _split_args(text):
    """Splits an argument/capture list on top-level commas (parens,
    brackets and braces nested arbitrarily)."""
    out, depth, start = [], 0, 0
    for i, c in enumerate(text):
        if c in "([{":
            depth += 1
        elif c in ")]}":
            depth -= 1
        elif c == "," and depth == 0:
            out.append(text[start:i])
            start = i + 1
    tail = text[start:]
    if tail.strip() or out:
        out.append(tail)
    return out


def _sig_params(sig):
    """Parameter-list text of a declarator (handles ctor init lists)."""
    m = FUNC_SIG_RE.search(sig)
    if not m:
        colon = _init_list_split(sig)
        if colon >= 0:
            m = FUNC_SIG_RE.search(sig[:colon])
    return m.group("params") if m else ""


def _param_names(params):
    """Name of each parameter, in order (None for unnamed)."""
    out = []
    for p in _split_args(params):
        p = p.split("=")[0].strip()
        m = re.search(r"(\w+)\s*$", p)
        out.append(m.group(1) if m and not _TYPE_TAIL_RE.search(p) else None)
    return out


# A parameter whose text *ends* in one of these is unnamed (`Mutex&`).
_TYPE_TAIL_RE = re.compile(r"(?:[&*>]|\bconst|\bauto|\bvoid)\s*$")


def _callable_aliases(sources):
    """Type names that denote callables: SmallFn, std::function aliases,
    and aliases of those (Callback, Handler, ...), by fixpoint."""
    names = {"SmallFn"}
    alias_rhs = []  # (alias, rhs) pairs
    alias_re = re.compile(r"\busing\s+(\w+)\s*=\s*([^;]+);")
    for src in sources:
        for m in alias_re.finditer(src.text):
            alias_rhs.append((m.group(1), m.group(2)))
    changed = True
    while changed:
        changed = False
        for alias, rhs in alias_rhs:
            if alias in names:
                continue
            if re.search(r"\bfunction\s*<", rhs) or \
                    any(re.search(rf"\b{re.escape(n)}\b", rhs) for n in names):
                names.add(alias)
                changed = True
    return names


def _is_callable_type(t, aliases):
    if re.search(r"\bfunction\s*<", t):
        return True
    return any(re.search(rf"\b{re.escape(a)}\b", t) for a in aliases)


def _ptr_aliases(sources):
    """`using XPtr = std::shared_ptr<T>`-style aliases:
    name -> (kind, element class)."""
    out = {}
    alias_re = re.compile(
        r"\busing\s+(\w+)\s*=\s*(?:std::)?"
        r"(shared_ptr|unique_ptr|weak_ptr)\s*<\s*(?:const\s+)?([\w:]+)")
    kinds = {"shared_ptr": "shared", "unique_ptr": "unique",
             "weak_ptr": "weak"}
    for src in sources:
        for m in alias_re.finditer(src.text):
            out[m.group(1)] = (kinds[m.group(2)],
                               m.group(3).rsplit("::", 1)[-1])
    return out


def _kind_of_type(tstr, mark, ptr_aliases):
    """Classifies a declared type: ('weak'|'shared'|'unique'|'ptr'|'ref'|
    'val', element-class). `mark` is the declarator's */& if any."""
    t = tstr.strip()
    m = re.match(r"(?:std::)?(shared_ptr|unique_ptr|weak_ptr)\s*<\s*"
                 r"(?:const\s+)?([\w:]+)", t)
    if m:
        kind = {"shared_ptr": "shared", "unique_ptr": "unique",
                "weak_ptr": "weak"}[m.group(1)]
        elem = m.group(2).rsplit("::", 1)[-1]
    else:
        short = re.sub(r"<.*", "", t).rsplit("::", 1)[-1]
        if short in ptr_aliases:
            kind, elem = ptr_aliases[short]
        else:
            kind, elem = "val", short
    if mark == "*":
        return "ptr", elem
    if mark in ("&", "&&"):
        return "ref", elem
    return kind, elem


_MEMBER_DECL_RE = re.compile(
    r"^\s*(?!using\b|typedef\b|friend\b|static\b|return\b|public\b"
    r"|private\b|protected\b|enum\b|class\b|struct\b|template\b|case\b)"
    r"(?:mutable\s+)?(?:const\s+)?"
    r"(?P<type>[A-Za-z_][\w:]*(?:\s*<[^;{}]*>)?)\s*"
    r"(?P<mark>[&*]?)\s*(?P<name>\w+)\s*"
    r"(?:GMMCS_\w+\s*\([^()]*\)\s*)?"
    r"(?:=[^;]*|\{[^;]*\})?;", re.M)


def _collect_member_types(sources, ptr_aliases):
    """cls -> {member: (kind, element class)} from class-body data-member
    declarations (top level only; method bodies blanked)."""
    out = {}
    for src in sources:
        for cls, b0, b1, _cap in _scan_classes(src.text):
            body = _blank_braced(src.text[b0:b1])
            for m in _MEMBER_DECL_RE.finditer(body):
                out.setdefault(cls, {})[m.group("name")] = _kind_of_type(
                    m.group("type"), m.group("mark"), ptr_aliases)
    return out


def _collect_pinned(sources):
    """Classes annotated GMMCS_PINNED("reason"); an empty reason is its
    own finding — the annotation is a claim a reviewer must be able to
    audit."""
    pinned, findings = set(), []
    for src in sources:
        for m in PINNED_CLASS_RE.finditer(src.text):
            pinned.add(m.group("name"))
            if not (m.group("reason") or "").strip():
                lineno = src.line_of(m.start())
                if not src.suppressed(lineno, "lifetime"):
                    findings.append(
                        (src.rel, lineno, "lifetime",
                         f"GMMCS_PINNED on '{m.group('name')}' has no "
                         f"reason string (write GMMCS_PINNED(\"why this "
                         f"object outlives every deferred callable\"))"))
    return pinned, findings


_GET_CALL_RE = re.compile(r"^([\w.\->]+?)\s*(?:\.|->)\s*get\s*\(\s*\)$")


def _elem_of_init(init, ptr_aliases, ret_types=None):
    """('shared'|'unique'|'ptr'|None, element class) judged from an
    initializer expression — make_shared/unique, a Ptr-alias ctor, `new`,
    or a call to a function whose declared return type is an owning
    handle (`StreamConnection::connect` returning StreamConnectionPtr)."""
    init = init.strip()
    m = re.search(r"make_(shared|unique)\s*<\s*([\w:\s]+?)\s*[,>]", init)
    if m:
        return ({"shared": "shared", "unique": "unique"}[m.group(1)],
                m.group(2).strip().rsplit("::", 1)[-1])
    m = re.match(r"(?:[\w:]+::)?(\w+)\s*[({]", init)
    if m and m.group(1) in ptr_aliases:
        return ptr_aliases[m.group(1)]
    m = re.search(r"\bnew\s+([\w:]+)", init)
    if m:
        return "shared", m.group(1).rsplit("::", 1)[-1]
    m = re.match(r"(?:[\w:]+::)?(\w+)\s*\(", init)
    if m and ret_types:
        r = ret_types.get(m.group(1))
        if r is not None:
            return r
    return None, None


class _LifetimeCtx:
    """Everything declaration lookup needs for one enclosing function."""

    def __init__(self, src, cls, sig, body, off, model):
        self.src = src
        self.cls = cls
        self.sig = sig
        self.body = body
        self.off = off
        self.model = model  # the _LifetimeModel

    def resolve(self, name):
        """(kind, elem, init) for `name` via the function signature, the
        body, then the owning class's members. init is the declaration's
        initializer text ('' when none)."""
        pat = re.compile(
            r"(?:^|[(,;{])\s*(?:const\s+)?"
            r"(?P<type>auto|[A-Za-z_][\w:]*(?:\s*<[^;{}]*>)?)\s*"
            r"(?P<mark>\*|&&|&)?\s*"
            rf"\b{re.escape(name)}\b\s*(?P<after>=(?!=)|[;,)({{])")
        for text in (self.sig, self.body):
            m = pat.search(text)
            if not m:
                continue
            init = ""
            if m.group("after").startswith("="):
                semi = text.find(";", m.end())
                init = text[m.end():semi if semi >= 0 else len(text)]
            t = m.group("type")
            if t == "auto":
                kind, elem = _elem_of_init(init, self.model.ptr_aliases,
                                           self.model.ret_types)
                if m.group("mark") == "*":
                    return "ptr", elem, init
                if kind is not None:
                    return kind, elem, init
                if re.search(r"weak_ptr|weak_from_this", init):
                    return "weak", None, init
                if _GET_CALL_RE.match(init.strip()):
                    return "ptr", None, init
                return "val", None, init
            return (*_kind_of_type(t, m.group("mark") or "",
                                   self.model.ptr_aliases), init)
        if self.cls is not None:
            mem = self.model.member_types.get(self.cls, {}).get(name)
            if mem is not None:
                return (*mem, "")
        return None

    def elem_class_of(self, name):
        """Pointee class of a smart/raw-pointer variable, or None."""
        r = self.resolve(name)
        return r[1] if r else None


class _LifetimeModel:
    def __init__(self):
        self.pinned = set()
        self.ptr_aliases = {}
        self.member_types = {}
        self.callable_aliases = set()
        self.sink_names = set()
        self.sink_ctors = set()
        self.sink_owners = {}  # sink name -> classes defining it
        self.ret_types = {}  # function base name -> (kind, elem)
        self.cls_text = {}   # cls -> concatenated sig+body text


def _stores_callable(body, sig, pname, sinks, sink_ctors):
    """True if the function stores or forwards callable parameter
    `pname` somewhere that outlives the call: a member/container
    assignment, a ctor init-list member, or an argument to a known
    sink (by name or sink-class construction)."""
    pv = rf"(?:std::move\s*\(\s*{pname}\s*\)|{pname})"
    if re.search(rf"[\w\])]\s*=\s*{pv}\s*[;,)]", body):
        return True
    if re.search(rf"\.\s*(?:push_back|emplace_back|emplace|insert|assign)"
                 rf"\s*\([^;]*?(?<![\w]){pv}(?![\w])", body):
        return True
    if re.search(rf"\w+_\s*[({{]\s*{pv}\s*[)}}]", sig):
        return True  # ctor init list: fn_(std::move(fn))
    for m in re.finditer(r"\b(\w+)\s*\(", body):
        callee = m.group(1)
        if callee not in sinks and callee not in sink_ctors:
            continue
        close = _matching_paren(body, m.end() - 1)
        args = body[m.end():close]
        if re.search(rf"(?<![\w]){pv}(?![\w])", args):
            return True
    for m in re.finditer(r"make_(?:unique|shared)\s*<\s*([\w:\s]+?)\s*[,>]"
                         r"[^(]*\(", body):
        if m.group(1).strip().rsplit("::", 1)[-1] in sink_ctors:
            close = _matching_paren(body, m.end() - 1)
            args = body[m.end():close]
            if re.search(rf"(?<![\w]){pv}(?![\w])", args):
                return True
    return False


def _build_lifetime_model(sources, funcs, extra_sinks):
    model = _LifetimeModel()
    model.callable_aliases = _callable_aliases(sources)
    model.ptr_aliases = _ptr_aliases(sources)
    model.member_types = _collect_member_types(sources, model.ptr_aliases)
    model.sink_names = set(DEFER_SINKS) | set(BIND_SINKS) | set(extra_sinks)

    for src, cls, name, sig, body, off in funcs:
        if cls is not None:
            model.cls_text.setdefault(cls, []).append(sig + "\n" + body)
        # Record functions whose declared return type is an owning
        # handle, so `auto c = StreamConnection::connect(...)` resolves.
        base = name.rsplit("::", 1)[-1]
        if cls is not None and base.lstrip("~") == cls:
            continue  # ctor/dtor
        rm = re.search(
            rf"([A-Za-z_][\w:]*(?:<[^<>;]*>)?)\s*(\*)?\s+"
            rf"(?:[\w:]+::)?{re.escape(base)}\s*\(", sig)
        if rm:
            kind, elem = _kind_of_type(rm.group(1), rm.group(2) or "",
                                       model.ptr_aliases)
            if kind in ("shared", "unique", "ptr") and \
                    base not in model.ret_types:
                model.ret_types[base] = (kind, elem)
    model.cls_text = {c: "\n".join(t) for c, t in model.cls_text.items()}

    # May-defer fixpoint over functions with callable-typed parameters.
    with_callables = []
    for src, cls, name, sig, body, off in funcs:
        params = _sig_params(sig)
        cparams = []
        for p in _split_args(params):
            p = p.split("=")[0].strip()
            m = re.search(r"(\w+)\s*$", p)
            if m and not _TYPE_TAIL_RE.search(p) and \
                    _is_callable_type(p[:m.start()], model.callable_aliases):
                cparams.append(m.group(1))
        if not cparams:
            continue
        base = name.rsplit("::", 1)[-1]
        is_ctor = cls is not None and base.lstrip("~") == cls
        with_callables.append((base, cls, cparams, sig, body, is_ctor))
    changed = True
    while changed:
        changed = False
        for base, cls, cparams, sig, body, is_ctor in with_callables:
            if (cls in model.sink_ctors) if is_ctor \
                    else (base in model.sink_names):
                continue
            if any(_stores_callable(body, sig, p, model.sink_names,
                                    model.sink_ctors) for p in cparams):
                if is_ctor:
                    model.sink_ctors.add(cls)
                else:
                    model.sink_names.add(base)
                    if cls is not None:
                        model.sink_owners.setdefault(base, set()).add(cls)
                changed = True
    return model


def _classify_capture(cap, ctx, recv_ids, sink_name, assign_target,
                      recv=""):
    """Returns None (safe) or (message, fix) for one capture of a lambda
    escaping into sink `sink_name`. `fix` is a dict for apply_fixes or
    None when no mechanical rewrite applies."""
    cap = cap.strip()
    if not cap:
        return None
    model = ctx.model

    def pinned(cls):
        return cls is not None and cls in model.pinned

    def recv_exclusive():
        """True when the sink's receiver chain is rooted in an
        exclusively-owned handle (a value or unique_ptr member/local):
        the stored callable dies with its owner, so captures of the
        owner (`this`, value members) cannot outlive it."""
        ids = re.findall(r"\w+", recv)
        if ids and ids[0] == "this":
            ids = ids[1:]
        if not ids:
            return False
        r = ctx.resolve(ids[0])
        return bool(r) and r[0] in ("val", "unique")

    def cancel_ok():
        if not assign_target or ctx.cls is None:
            return False
        return bool(re.search(
            rf"\bcancel\w*\s*\(\s*[^()]*\b{re.escape(assign_target)}\b",
            model.cls_text.get(ctx.cls, "")))

    def release_ok(obj_cls):
        if sink_name not in BIND_SINKS or obj_cls is None:
            return False
        return bool(re.search(r"\bunbind\w*\s*\(",
                              model.cls_text.get(obj_cls, "")))

    def self_storage():
        """True for an unqualified (or this->) call to a sink method of
        the capturing class itself: the callable lands in a member of
        `this` and dies with it."""
        ids = re.findall(r"\w+", recv)
        if ids and ids != ["this"]:
            return False
        return ctx.cls is not None and \
            ctx.cls in model.sink_owners.get(sink_name, ())

    def this_ok():
        return pinned(ctx.cls) or recv_exclusive() or self_storage() \
            or cancel_ok() or release_ok(ctx.cls)

    def raw_ok(elem_cls, source):
        if pinned(elem_cls):
            return True
        if source is not None and source in recv_ids:
            return True  # registration-on-self
        return cancel_ok() or release_ok(elem_cls)

    def raw_fix(cap_text, var, source):
        """weak_ptr rewrite when the raw pointer's source is a
        shared_ptr variable in scope. No fix if the source is ever
        moved-from in this function — std::weak_ptr(moved) is empty and
        the rewrite would turn the handler into a silent no-op."""
        if source is None:
            return None
        r = ctx.resolve(source)
        if not r or r[0] != "shared":
            return None
        if re.search(rf"std::move\s*\(\s*{re.escape(source)}\s*\)",
                     ctx.body):
            return None
        return dict(old=cap_text, var=var, weak=f"{var}_weak",
                    new=f"{var}_weak = std::weak_ptr({source})")

    if cap == "&":
        return (f"lambda escaping into deferred sink '{sink_name}' "
                f"captures everything by reference ([&]); name and "
                f"justify each capture", None)
    if cap == "=":
        if ctx.cls is not None and not this_ok():
            return (f"[=] in a member function implicitly captures raw "
                    f"`this` into deferred sink '{sink_name}' and "
                    f"'{ctx.cls}' is not GMMCS_PINNED", None)
        return None
    if cap == "*this":
        return None
    if cap == "this":
        if this_ok():
            return None
        return (f"raw `this` ({ctx.cls or 'unknown class'}) captured "
                f"into deferred sink '{sink_name}'; the object can die "
                f"before the callable runs — pin the class "
                f"(GMMCS_PINNED), cancel the task in teardown, or "
                f"capture a weak_ptr", None)
    if cap.startswith("&"):
        name = cap[1:].strip()
        r = ctx.resolve(name) if re.fullmatch(r"\w+", name) else None
        if r and r[0] in ("val", "ref") and pinned(r[1]):
            return None
        if r and r[0] == "val" and ctx.cls is not None \
                and name in model.member_types.get(ctx.cls, {}) \
                and recv_exclusive():
            return None  # ref to a value member, slot dies with `this`
        what = f"'&{name}'"
        return (f"by-reference capture {what} escapes into deferred sink "
                f"'{sink_name}'; the referent "
                f"{'(' + (r[1] or 'unresolved type') + ') ' if r else ''}"
                f"is not GMMCS_PINNED and may die before the callable "
                f"runs — capture by value or via weak_ptr", None)

    im = re.match(r"(\w+)\s*=\s*(.+)$", cap, re.S)
    if im:
        var, expr = im.group(1), im.group(2).strip()
        if expr == "this":
            if this_ok():
                return None
            return (f"raw `this` (as '{var} = this') captured into "
                    f"deferred sink '{sink_name}' and "
                    f"'{ctx.cls or '?'}' is not GMMCS_PINNED", None)
        if re.search(r"weak_ptr|weak_from_this", expr):
            return None
        if re.search(r"shared_from_this|make_shared", expr):
            return None
        if expr.startswith("&"):
            return (f"init-capture '{var} = {expr}' takes the address of "
                    f"a scoped object into deferred sink '{sink_name}'",
                    None)
        gm = _GET_CALL_RE.match(expr)
        if gm:
            source = gm.group(1).rsplit("->", 1)[-1].rsplit(".", 1)[-1]
            elem = ctx.elem_class_of(source)
            if raw_ok(elem, source):
                return None
            return (f"raw pointer '{var} = {expr}' (a "
                    f"{elem or '?'}*) escapes into deferred sink "
                    f"'{sink_name}' and can dangle — capture "
                    f"std::weak_ptr({source}) and lock() with an early "
                    f"return (the PR 7 kPing shape)",
                    raw_fix(cap, var, source))
        if re.fullmatch(r"std::move\s*\(\s*\w+\s*\)", expr):
            return _classify_capture(
                re.search(r"\(\s*(\w+)\s*\)", expr).group(1), ctx,
                recv_ids, sink_name, assign_target, recv)
        if re.fullmatch(r"\w+", expr):
            return _classify_plain(expr, var, cap, ctx, recv_ids,
                                   sink_name, assign_target,
                                   raw_fix)
        return None  # value-building expression: owned copy
    if re.fullmatch(r"\w+", cap):
        return _classify_plain(cap, cap, cap, ctx, recv_ids, sink_name,
                               assign_target, None)
    return None


def _classify_plain(name, var, cap_text, ctx, recv_ids, sink_name,
                    assign_target, raw_fix):
    """Classify a by-value capture of `name` (possibly through an init
    capture aliasing it as `var`)."""
    model = ctx.model
    r = ctx.resolve(name)
    if r is None:
        return None  # unresolved: assume an owned value
    kind, elem, init = r
    if kind in ("weak", "shared", "val", "ref", "unique"):
        return None  # the capture copies an owning (or weak) handle
    # kind == "ptr": a raw pointer travels into the deferral.
    if elem is not None and elem in model.pinned:
        return None
    source = None
    gm = _GET_CALL_RE.match(init.strip()) if init else None
    if gm:
        source = gm.group(1).rsplit("->", 1)[-1].rsplit(".", 1)[-1]
        if elem is None:
            elem = ctx.elem_class_of(source)
            if elem is not None and elem in model.pinned:
                return None
    if (name in recv_ids) or (source is not None and source in recv_ids):
        return None  # registration-on-self
    if assign_target and ctx.cls is not None and re.search(
            rf"\bcancel\w*\s*\(\s*[^()]*\b{re.escape(assign_target)}\b",
            model.cls_text.get(ctx.cls, "")):
        return None
    if sink_name in BIND_SINKS and elem is not None and re.search(
            r"\bunbind\w*\s*\(", model.cls_text.get(elem, "")):
        return None
    fix = None
    if raw_fix is not None and source is not None:
        fix = raw_fix(cap_text, var, source)
    elif source is not None:
        sr = ctx.resolve(source)
        if sr and sr[0] == "shared" and not re.search(
                rf"std::move\s*\(\s*{re.escape(source)}\s*\)", ctx.body):
            fix = dict(old=cap_text, var=var, weak=f"{var}_weak",
                       new=f"{var}_weak = std::weak_ptr({source})")
    return (f"raw pointer capture '{name}' ({elem or '?'}*) escapes "
            f"into deferred sink '{sink_name}' and can dangle before "
            f"the callable runs — capture a std::weak_ptr and lock() "
            f"with an early return (the PR 7 kPing shape), or pin the "
            f"pointee's class with GMMCS_PINNED", fix)


_SINK_CALL_TMPL = (r"(?P<recv>(?:[\w\)\]]+\s*(?:\.|->)\s*)*)"
                   r"\b(?P<fn>%s)\s*\(")
_NAMED_LAMBDA_RE = re.compile(r"\b(?:const\s+)?(?:auto|\w*Fn|Callback)\s+"
                              r"(\w+)\s*=\s*\[")

# A call that drains the event loop in the registering function itself —
# `loop.run()`, `run_for(...)`, `run_until(...)`.
_DRAIN_RE = re.compile(r"[\w\)\]]\s*(?:\.|->)\s*run(?:_for|_until)?\s*\(")


def pass_lifetime(sources, extra_sinks=(), extra_pinned=()):
    """Deferred-capture lifetime analysis (see the section comment)."""
    del LIFETIME_FIXES[:]
    findings = []
    funcs = []
    for src in sources:
        for cls, name, params, annos, body, off in \
                _extract_functions_ctx(src.text):
            if cls is None and "::" in name:
                cls = name.rsplit("::", 1)[0].rsplit("::", 1)[-1]
            funcs.append((src, cls, name,
                          _signature_text(src.text, off), body, off))
    model = _build_lifetime_model(sources, funcs, extra_sinks)
    model.pinned, pin_findings = _collect_pinned(sources)
    model.pinned |= set(extra_pinned)
    findings.extend(pin_findings)

    sink_alt = "|".join(sorted(model.sink_names | model.sink_ctors))
    if not sink_alt:
        return sorted(set(findings))
    sink_re = re.compile(_SINK_CALL_TMPL % sink_alt)
    mk_re = re.compile(r"make_(?:unique|shared)\s*<\s*([\w:\s]+?)\s*[,>]"
                       r"\s*\(")

    for src, cls, name, sig, body, off in funcs:
        ctx = _LifetimeCtx(src, cls, sig, body, off, model)
        # Drains-after carve-out: a function that registers callables and
        # then runs the event loop to completion (`loop.run()` /
        # `run_for` / `run_until`) before returning has structurally
        # proven the deferred work executes before its locals die —
        # the bench/experiment driver shape.
        drains = [d.start() for d in _DRAIN_RE.finditer(body)]
        named = {}
        for nm in _NAMED_LAMBDA_RE.finditer(body):
            named[nm.group(1)] = nm.end() - 1  # offset of '['
        sites = []
        for m in sink_re.finditer(body):
            sites.append((m.start(), m.end() - 1, m.group("recv") or "",
                          m.group("fn")))
        for m in mk_re.finditer(body):
            tcls = m.group(1).strip().rsplit("::", 1)[-1]
            if tcls in model.sink_ctors:
                sites.append((m.start(), m.end() - 1, "", tcls))
        for start, open_idx, recv, fn in sites:
            if any(d > start for d in drains):
                continue
            close = _matching_paren(body, open_idx)
            args = body[open_idx + 1:close]
            recv_ids = set(re.findall(r"\w+", recv))
            stmt_start = max(body.rfind(";", 0, start),
                             body.rfind("{", 0, start),
                             body.rfind("}", 0, start)) + 1
            am = re.search(r"(\w+)\s*=[^=]", body[stmt_start:start])
            assign_target = am.group(1) if am else None
            arg_base = open_idx + 1
            pos_in_args = 0
            for arg in _split_args(args):
                a = arg.strip()
                arg_off = arg_base + pos_in_args + (len(arg) - len(arg.lstrip()))
                pos_in_args += len(arg) + 1
                cap_text, cap_off = None, None
                if a.startswith("["):
                    lb = arg.find("[")
                    cap_text = arg[lb + 1:_matching_bracket(arg, lb) - 1]
                    cap_off = arg_off
                elif re.fullmatch(r"(?:std::move\s*\(\s*)?\w+\s*\)?", a):
                    nm = re.search(r"(\w+)\s*\)?\s*$", a).group(1)
                    if nm in named:
                        lb = named[nm]
                        cap_text = body[lb + 1:_matching_bracket(body, lb) - 1]
                        cap_off = arg_off
                if cap_text is None:
                    continue
                for cap in _split_args(cap_text):
                    verdict = _classify_capture(cap, ctx, recv_ids, fn,
                                                assign_target, recv)
                    if verdict is None:
                        continue
                    msg, fix = verdict
                    lineno = src.line_of(off + cap_off)
                    if src.suppressed(lineno, "lifetime"):
                        continue
                    findings.append((src.rel, lineno, "lifetime",
                                     f"{msg} (in {name})"))
                    if fix is not None:
                        fix.update(rel=src.rel, lineno=lineno)
                        LIFETIME_FIXES.append(fix)
    return sorted(set(findings))


# --------------------------------------------------------------------------
# Pass 8: copy discipline.
# --------------------------------------------------------------------------
#
# The zero-copy payload plane (DESIGN.md §15): a routed event's bytes
# are allocated once, at the publishing client's encode, and every later
# stage — broker ingress, tree-wide fan-out, subscriber decode, RTP
# parse, archive append/replay — holds a gmmcs::Payload handle into that
# one buffer. This pass is the static gate that keeps it true.
#
# Dataflow model. Payload-typed values are `Bytes` and `Payload` —
# parameters, locals, and the plane's well-known members (`.payload`,
# `.wire()`). Each value has an origin:
#   - fresh: the result of a call (encode()/serialize()/take()/slice())
#     or a literal — binding it is a move, never a copy;
#   - shared: an lvalue (a parameter, a local, a member) whose bytes
#     another holder may still need — duplicating it deep-copies.
# The pass walks every function, resolves identifiers against the
# enclosing signature and body, and flags the four ways shared bytes get
# silently duplicated:
#
#   1. by-value sink params: a `Bytes` parameter taken by value whose
#      body neither std::move()s it onward nor mutates it deep-copies at
#      every call site — take `const Bytes&` (inspect-only) or keep
#      by-value and move it into the sink. (`Payload` by value is a
#      refcounted handle and always fine.)
#   2. copy-construction from a shared origin: `Bytes b = other;` (or
#      the paren/iterator-range forms) without std::move and without
#      mutating `b` afterwards duplicates bytes a Payload handle — or
#      the lvalue itself — would have served. Mutation-before-store is
#      the structural justification: a buffer that is stamped or
#      extended genuinely needed its own allocation. The iterator-range
#      form `Bytes(x.begin() + k, x.end())` is the shape the stream
#      delivery path carried before Payload::slice() replaced it.
#   3. allocating inspect-only reads: a ByteReader raw()/str()/lstr()
#      result that is only compared or read wants the non-allocating
#      view()/str_view()/lstr_view() sibling.
#   4. re-framing: writing an already-framed wire image back through
#      `ByteWriter::raw(x.wire())` / `raw(encode(...))` /
#      `raw(x.serialize())` re-buffers bytes the plane already owns —
#      adopt the arriving frame or slice it instead.
#
# `--fix` rewrites the mechanical shapes: an unmoved by-value `Bytes`
# parameter becomes `const Bytes&` (its out-of-line declaration, if any,
# must follow), and inspect-only reads become their view siblings
# (`auto v = r.view(n)` for raw — span supports every read-only use the
# rule admits). Re-framing and shared-origin copies are structural and
# stay manual. A justified deep copy is spelled Payload::copy_of(...)
# (counted at runtime by payload_copy_count()) or carries
# `gmmcs-lint: allow(copy): reason`; the shipped tree carries neither —
# it lints clean with zero suppressions.

# Fix records produced by the last pass_copy run, consumed by
# apply_fixes: dicts with rel/lineno/old/new.
COPY_FIXES = []

_COPY_MUTATORS = ("push_back", "pop_back", "insert", "emplace_back",
                  "resize", "clear", "assign", "erase", "append",
                  "reserve", "swap")

# Read-only member accesses that a span serves just as well: the
# inspect-only-local analysis treats these (and comparisons) as
# non-escaping uses.
_COPY_READONLY = ("size", "empty", "data", "begin", "end", "front", "back")

_COPY_BYVALUE_PARAM_RE = re.compile(
    r"^(?:gmmcs::)?Bytes\s+(\w+)\s*(?:=[^,]*)?$")
_COPY_PARAM_NAME_RE = re.compile(
    r"^(?:const\s+)?(?:gmmcs::)?(?:Bytes|Payload)\s*&{0,2}\s*(\w+)\s*(?:=[^,]*)?$")
_COPY_LOCAL_DECL_RE = re.compile(
    r"\b(?:const\s+)?(?:gmmcs::)?(?:Bytes|Payload)\s+(\w+)\s*[;={(]")
_COPY_INIT_RE = re.compile(
    r"\b(?:const\s+)?(?:gmmcs::)?Bytes\s+(\w+)\s*(?:=\s*([^;{}]+?)"
    r"|\(\s*([^;{}]+?)\s*\)|\{\s*([^;{}]+?)\s*\})\s*;")
_COPY_RANGE_CTOR_RE = re.compile(
    r"(?:gmmcs::)?Bytes\s*\(\s*([\w.\->]+?)\s*\.\s*begin\s*\(\s*\)\s*"
    r"(?:[+\-]\s*[\w()]+\s*)?,\s*\1\s*\.\s*end\s*\(\s*\)\s*\)")
_COPY_MEMBER_LVALUE_RE = re.compile(
    r"^[\w.\[\]]+(?:\.|->)(?:payload|wire\(\))$")
_COPY_READER_DECL_RE = re.compile(r"\bByteReader\s+(\w+)\s*[({]")
_COPY_ALLOC_READ_RE = re.compile(r"\b(\w+)\s*\.\s*(raw|str|lstr)\s*\(")
_COPY_INSPECT_LOCAL_RE = re.compile(
    r"\b(?:(?:const\s+)?(?:gmmcs::)?Bytes|(?:const\s+)?std::string|"
    r"(?:const\s+)?auto)\s+(\w+)\s*=\s*(\w+)\s*\.\s*(raw|str|lstr)\s*\(")
_COPY_REFRAME_RE = re.compile(
    r"\.\s*raw\s*\(\s*[\w.\->]*?(?:wire\s*\(\s*\)|serialize\s*\(\s*\)|"
    r"encode\s*\([^()]*\))\s*\)")

_COPY_VIEW_SIBLING = {"raw": "view", "str": "str_view", "lstr": "lstr_view"}


def _copy_mutated(body, name, start=0):
    """Does `body` (after `start`) mutate payload-typed local `name`?
    Reassignment, a mutator method, element writes, and in-place
    stamping (embed_origin) all count — each proves the value needed a
    private buffer."""
    esc = re.escape(name)
    if re.search(r"\b%s\s*(?:\.|->)\s*(?:%s)\s*\(" %
                 (esc, "|".join(_COPY_MUTATORS)), body[start:]):
        return True
    if re.search(r"\b%s\s*\[[^\]]*\]\s*=[^=]" % esc, body[start:]):
        return True
    if re.search(r"\b%s\s*=[^=]" % esc, body[start:]):
        return True
    if re.search(r"\bembed_origin\s*\(\s*%s\b" % esc, body[start:]):
        return True
    return False


def _copy_payload_names(params, body):
    """Identifiers of payload type in scope: parameters (any ref-ness —
    a const Bytes& parameter is still a shared lvalue) plus locals."""
    names = set()
    for p in _split_args(params):
        m = _COPY_PARAM_NAME_RE.match(p.strip())
        if m:
            names.add(m.group(1))
    for m in _COPY_LOCAL_DECL_RE.finditer(body):
        names.add(m.group(1))
    return names


def _copy_inspect_only(body, name, start):
    """True if every use of `name` after `start` is a comparison or a
    read-only member access — i.e. a non-owning view would have served.
    Any other use (call argument, return, move, store, mutation) makes
    the owned copy potentially load-bearing and the analysis stays
    quiet."""
    esc = re.escape(name)
    for m in re.finditer(r"\b%s\b" % esc, body[start:]):
        at = start + m.start()
        after = body[at + len(name):]
        before = body[:at]
        ro = "|".join(_COPY_READONLY)
        if re.match(r"\s*(?:==|!=)", after):
            continue
        if re.search(r"(?:==|!=)\s*$", before):
            continue
        if re.match(r"\s*(?:\.|->)\s*(?:%s)\s*\(" % ro, after):
            continue
        if re.match(r"\s*\[[^\]]*\]\s*(?!=[^=])", after):
            continue
        return False
    return True


def pass_copy(sources):
    """Copy-discipline dataflow over payload-typed values (see the
    section comment)."""
    del COPY_FIXES[:]
    findings = []

    def report(src, off_in_text, msg, fix=None):
        lineno = src.line_of(off_in_text)
        if src.suppressed(lineno, "copy"):
            return
        findings.append((src.rel, lineno, "copy", msg))
        if fix is not None:
            fix.update(rel=src.rel, lineno=lineno)
            COPY_FIXES.append(fix)

    for src in sources:
        for cls, name, params, _annos, body, off in \
                _extract_functions_ctx(src.text):
            # Rule 1: by-value Bytes parameters that are never adopted.
            for p in _split_args(params):
                pm = _COPY_BYVALUE_PARAM_RE.match(p.strip())
                if not pm:
                    continue
                pname = pm.group(1)
                if re.search(r"std::move\s*\(\s*%s\s*\)" % re.escape(pname),
                             body):
                    continue
                if _copy_mutated(body, pname):
                    continue
                # Locate the parameter in the signature (the text just
                # before the body) for the line number and the fix.
                sig_at = src.text.rfind("Bytes", max(0, off - 400), off)
                decl = "Bytes " + pname
                decl_at = src.text.rfind(decl, max(0, off - 400), off)
                report(src, decl_at if decl_at >= 0 else
                       (sig_at if sig_at >= 0 else off),
                       f"by-value Bytes parameter '{pname}' of {name} is "
                       f"deep-copied at every call and never moved into a "
                       f"sink — take const Bytes& (inspect-only) or "
                       f"std::move it onward",
                       fix={"old": decl, "new": "const Bytes& " + pname}
                       if decl_at >= 0 else None)

            payload_names = _copy_payload_names(params, body)

            # Rule 2: copy-construction from a shared origin.
            for m in _COPY_INIT_RE.finditer(body):
                dst = m.group(1)
                init = next((g for g in m.groups()[1:] if g), "").strip()
                if not init or "std::move" in init or "copy_of" in init:
                    continue
                shared = (re.fullmatch(r"\w+", init) and init in
                          payload_names) or \
                    _COPY_MEMBER_LVALUE_RE.match(init)
                if not shared:
                    continue
                if _copy_mutated(body, dst, m.end()):
                    continue
                report(src, off + m.start(),
                       f"'{dst}' copy-constructs payload bytes from "
                       f"lvalue '{init}' and never mutates them — bind a "
                       f"reference, share a Payload handle, or spell the "
                       f"copy Payload::copy_of")

            # Rule 2b: iterator-range byte copies of a payload value
            # (the pre-Payload stream delivery shape).
            for m in _COPY_RANGE_CTOR_RE.finditer(body):
                base = m.group(1).split(".")[0].split("->")[0]
                if base in payload_names or ".payload" in m.group(1) or \
                        "payload" == m.group(1).rsplit(".", 1)[-1]:
                    report(src, off + m.start(),
                           f"byte-range copy of payload '{m.group(1)}' — "
                           f"Payload::slice() shares the buffer instead "
                           f"of duplicating it")

            # Rule 3: allocating inspect-only reads.
            readers = set(_COPY_READER_DECL_RE.findall(body)) | \
                set(_COPY_READER_DECL_RE.findall(params))
            handled = set()
            for m in _COPY_INSPECT_LOCAL_RE.finditer(body):
                local, recv, op = m.group(1), m.group(2), m.group(3)
                if recv not in readers:
                    continue
                handled.add(m.start())
                if not _copy_inspect_only(body, local, m.end()):
                    continue
                old = src.text[off + m.start():off + m.end()]
                new = re.sub(r"^\s*(?:const\s+)?(?:gmmcs::)?"
                             r"(?:Bytes|std::string|auto)",
                             "auto", old.strip())
                new = re.sub(r"\.\s*%s\s*\($" % op,
                             ".%s(" % _COPY_VIEW_SIBLING[op], new)
                report(src, off + m.start(),
                       f"'{local}' allocates an owned copy via {op}() but "
                       f"is only inspected — {_COPY_VIEW_SIBLING[op]}() "
                       f"reads it in place",
                       fix={"old": old, "new": new})
            for m in _COPY_ALLOC_READ_RE.finditer(body):
                recv, op = m.group(1), m.group(2)
                if recv not in readers:
                    continue
                close = _matching_paren(body, m.end() - 1)
                after = body[close + 1:]
                before = body[:m.start()]
                direct_cmp = re.match(r"\s*(?:==|!=)", after) or \
                    re.search(r"(?:==|!=)\s*$", before)
                if not direct_cmp:
                    continue
                old = body[m.start():m.end()]
                fix = None
                if op in ("str", "lstr"):  # string_view compares cleanly
                    fix = {"old": old,
                           "new": old.replace(op + "(",
                                              _COPY_VIEW_SIBLING[op] + "(")
                           .replace(op + " (",
                                    _COPY_VIEW_SIBLING[op] + " (")}
                report(src, off + m.start(),
                       f"{op}() allocates an owned copy only to compare "
                       f"it — {_COPY_VIEW_SIBLING[op]}() inspects the "
                       f"buffer in place", fix=fix)

            # Rule 4: re-framing an already-framed wire image.
            for m in _COPY_REFRAME_RE.finditer(body):
                report(src, off + m.start(),
                       "re-buffers an already-framed payload through "
                       "ByteWriter::raw — adopt the frame (RoutedEvent's "
                       "wire ctor) or slice the arriving buffer instead "
                       "of re-copying bytes the plane already owns")

    return sorted(set(findings))


# --------------------------------------------------------------------------
# Pass 9: wire — untrusted-input taint analysis (DESIGN.md §16).
# --------------------------------------------------------------------------
#
# Every broker and gateway decoder is fed bytes it did not produce, so a
# length or count lifted off the wire is attacker-chosen until proven
# otherwise. This pass marks integers produced by raw ByteReader reads
# (u8/u16/u32/u64) as *wire-tainted* and rejects them flowing unchecked
# into allocation sizes (resize/reserve/Bytes(n)/ByteWriter(n)/new[]),
# container indexing, loop bounds, and Payload::slice offsets.
#
# The taint lattice has three points:
#   - tainted: a raw wire integer — may claim anything up to 2^64.
#   - frame-bounded: cursor-derived quantities (position(), remaining(),
#     rest().size(), view/str_view/lstr_view lengths). These cannot
#     exceed the frame that arrived, so allocating or looping from them
#     is O(frame) by construction; the pass does not taint them.
#   - sanitized: tainted, then dominated by a guard. A guard is an if/
#     loop condition comparing the value against reader.remaining(), a
#     protocol-max kConstant, or an explicit integer literal; a std::min
#     clamp; or birth from the checked bounded reads (read_len_bounded /
#     read_count_u8/u16/u32), whose results are safe at the source.
#
# Dominance is textual, like the result pass's .value() check: a guard
# sanitizes every later use in the same function body. Taint crosses
# helpers both ways within a file (decoder helpers are file-local in
# this tree): a helper returning a raw read taints its callers'
# assignments, and passing a tainted value to a helper whose parameter
# reaches a sink unguarded is flagged at the call site.
#
# Wrap rule: guard arithmetic must not overflow before it compares —
# `if (n * 4 > r.remaining())` on a narrow n wraps and waves the attack
# through; the multiplication needs a std::size_t widening (or a size_t
# kConstant operand).
#
# The text half bans throwing/unbounded numeric conversions (std::sto*,
# atoi, strtol...) in protocol modules: hostile header text goes through
# the non-throwing bounded gmmcs::parse_* helpers (common/strings.hpp).

# The checked-read plane itself: its internals are the primitive layer.
WIRE_PRIMITIVE_FILES = {"src/common/bytes.cpp", "src/common/bytes.hpp"}
# Modules whose inputs are local trusted artifacts (chaos spec files,
# bench configs), not peer bytes; common/ holds the parse helpers.
WIRE_TRUSTED_MODULES = {"sim", "common"}

WIRE_READ_RE = re.compile(r"\.\s*(?:u8|u16|u32|u64)\s*\(")
WIRE_BOUNDED_RE = re.compile(
    r"read_len_bounded|read_count_u8|read_count_u16|read_count_u32"
    r"|std\s*::\s*min\b")
WIRE_STO_RE = re.compile(
    r"\b(?:std\s*::\s*)?(stoi|stol|stoll|stoul|stoull|stof|stod|stold|"
    r"atoi|atol|atoll|strtol|strtoll|strtoul|strtoull|strtof|strtod)\s*\(")
# Tokens that make a comparison a real upper bound: the reader's own
# cursor, a protocol-max constant, or an explicit literal (0 alone never
# bounds above — `n > 0` admits everything).
WIRE_BOUND_TOKEN_RE = re.compile(
    r"\bremaining\s*\(|\bk[A-Z]\w*|\b(?!0\b)\d+\b|\b\w*[Mm]ax\w*\b|\bsizeof\b")
# Widening that keeps guard arithmetic from wrapping: an explicit size_t/
# u64 operand, or a kConstant (declared std::size_t by convention here).
WIRE_WIDEN_RE = re.compile(
    r"std\s*::\s*size_t\s*[{(]|static_cast\s*<\s*std\s*::\s*(?:size_t|uint64_t)\s*>"
    r"|\bk[A-Z]\w*|\bsizeof\b")
WIRE_ASSIGN_RE = re.compile(
    r"\b([A-Za-z_]\w*)\s*([+\-*/%|&^]?=)(?![=>])\s*([^;{}]*);")
WIRE_ALLOC_RE = re.compile(
    r"\.\s*(?:resize|reserve)\s*\(|\b(?:Bytes|ByteWriter)\s+[A-Za-z_]\w*\s*\("
    r"|\b(?:Bytes|ByteWriter)\s*\(|\bnew\s+[\w:]+\s*\[")
WIRE_SLICE_RE = re.compile(r"\.\s*slice\s*\(")
WIRE_INDEX_RE = re.compile(r"[\w\)\]]\s*(\[)")
WIRE_LOOP_RE = re.compile(r"\b(for|while)\s*\(")
WIRE_IF_RE = re.compile(r"\bif\s*\(")
WIRE_RETURN_RE = re.compile(r"\breturn\s+([^;]*);")


def _wire_matching_bracket(text, open_idx):
    depth = 0
    for i in range(open_idx, len(text)):
        if text[i] == "[":
            depth += 1
        elif text[i] == "]":
            depth -= 1
            if depth == 0:
                return i
    return -1


def _wire_word(name):
    return re.compile(rf"\b{re.escape(name)}\b")


def _wire_split_args(argtext):
    """Splits an argument list on top-level commas."""
    parts, depth, cur = [], 0, []
    for ch in argtext:
        if ch in "(<[{":
            depth += 1
        elif ch in ")>]}":
            depth -= 1
        if ch == "," and depth == 0:
            parts.append("".join(cur))
            cur = []
        else:
            cur.append(ch)
    if cur or parts:
        parts.append("".join(cur))
    return parts


def _wire_param_names(params):
    """Parameter names of a function, excluding the IO objects themselves."""
    names = []
    for part in _wire_split_args(params):
        if re.search(r"\bByte(Reader|Writer)\b", part):
            continue
        toks = re.findall(r"[A-Za-z_]\w*", re.sub(r"=\s*[^,]*$", "", part))
        if len(toks) >= 2:
            names.append(toks[-1])
    return names


def _wire_active(tainted, sanitized, name, pos):
    """Is `name` tainted and not yet sanitized at body position `pos`?"""
    return (name in tainted and tainted[name] <= pos
            and sanitized.get(name, 10**18) > pos)


def _wire_scan(body, seed, reader_names, tainted_helpers):
    """One function-body dataflow walk.

    Returns (tainted, sanitized, sinks): positions where each variable
    became tainted / dominated by a guard, and raw sink hits as
    (pos, kind, name, wrap) tuples. `seed` pre-taints names (used for
    parameter-to-sink summaries and actual reader-derived locals alike).
    """
    tainted = dict(seed)
    sanitized = {}
    read_alt = "|".join(sorted(reader_names)) if reader_names else r"(?!x)x"
    direct_read = re.compile(rf"\b(?:{read_alt})\s*\.\s*(?:u8|u16|u32|u64)\s*\(")
    helper_alt = ("|".join(sorted(tainted_helpers))
                  if tainted_helpers else r"(?!x)x")
    helper_call = re.compile(rf"\b(?:{helper_alt})\s*\(")

    def rhs_tainted(rhs, pos):
        if WIRE_BOUNDED_RE.search(rhs):
            return False  # born sanitized: clamped at the source
        if direct_read.search(rhs) or helper_call.search(rhs):
            return True
        return any(_wire_active(tainted, sanitized, t, pos)
                   and _wire_word(t).search(rhs) for t in list(tainted))

    # Taint propagation through assignments: two rounds reach the
    # chains the single forward walk misses (a = read; b = a; c = b).
    for _ in range(2):
        for m in WIRE_ASSIGN_RE.finditer(body):
            name, rhs = m.group(1), m.group(3)
            at = m.start(1)
            prev = body[:at].rstrip()
            if prev.endswith(".") or prev.endswith("->"):
                continue  # member assignment: members are not tracked
            if name in tainted and tainted[name] <= at:
                continue
            if rhs_tainted(rhs, at):
                tainted[name] = at

    # Guards: an if/loop condition bounding a tainted name sanitizes it
    # from that point on (textual dominance).
    wraps = []
    for m in list(WIRE_IF_RE.finditer(body)) + list(WIRE_LOOP_RE.finditer(body)):
        open_idx = body.index("(", m.start())
        close = _matching_paren(body, open_idx)
        if close < 0:
            continue
        cond = body[open_idx + 1:close]
        if not WIRE_BOUND_TOKEN_RE.search(cond):
            continue
        for t in list(tainted):
            if tainted[t] > close or not _wire_word(t).search(cond):
                continue
            if sanitized.get(t, 10**18) > close:
                sanitized[t] = close
            # Wrap rule: arithmetic on the tainted value inside the guard
            # must carry a widening operand or it can overflow first.
            arith = re.search(
                rf"(?:\b{re.escape(t)}\b\s*[*+]|[*+]\s*\b{re.escape(t)}\b)",
                cond)
            if arith and not WIRE_WIDEN_RE.search(cond):
                wraps.append((m.start(), "wrap", t, False))

    sinks = list(wraps)

    def check_expr(pos, kind, expr):
        for t in list(tainted):
            if _wire_active(tainted, sanitized, t, pos) and \
                    _wire_word(t).search(expr):
                sinks.append((pos, kind, t, False))
                return

    for m in WIRE_ALLOC_RE.finditer(body):
        open_idx = body.find("(", m.start())
        if open_idx < 0 or "[" in m.group(0):
            if "[" in m.group(0):  # new T[expr]
                bopen = body.index("[", m.start())
                bclose = _wire_matching_bracket(body, bopen)
                if bclose > 0:
                    check_expr(m.start(), "allocation",
                               body[bopen + 1:bclose])
            continue
        close = _matching_paren(body, open_idx)
        if close > 0:
            check_expr(m.start(), "allocation", body[open_idx + 1:close])

    for m in WIRE_SLICE_RE.finditer(body):
        open_idx = body.index("(", m.start())
        close = _matching_paren(body, open_idx)
        if close > 0:
            check_expr(m.start(), "slice", body[open_idx + 1:close])

    for m in WIRE_INDEX_RE.finditer(body):
        bopen = m.start(1)
        if re.search(r"\bnew\s+[\w:]+\s*$", body[:bopen]):
            continue  # new T[n] is the allocation sink, not an index
        bclose = _wire_matching_bracket(body, bopen)
        if bclose > 0:
            check_expr(m.start(), "index", body[bopen + 1:bclose])

    for m in WIRE_LOOP_RE.finditer(body):
        open_idx = body.index("(", m.start())
        close = _matching_paren(body, open_idx)
        if close < 0:
            continue
        cond = body[open_idx + 1:close]
        if m.group(1) == "for":
            clauses = cond.split(";")
            cond = clauses[1] if len(clauses) >= 2 else cond
        if WIRE_BOUND_TOKEN_RE.search(cond):
            continue  # self-guarded: the condition itself carries a bound
        check_expr(m.start(), "loop bound", cond)

    return tainted, sanitized, sinks


WIRE_SINK_MSG = {
    "allocation": "drives an allocation size",
    "slice": "reaches Payload::slice",
    "index": "indexes a container",
    "loop bound": "bounds this loop",
}


def pass_wire(sources):
    findings = []
    for src in sources:
        parts = src.rel.split("/")
        if len(parts) < 3 or parts[0] != "src":
            continue
        module = parts[1]
        if module in WIRE_TRUSTED_MODULES or src.rel in WIRE_PRIMITIVE_FILES:
            continue

        # Text half: throwing/unbounded numeric parses on protocol text.
        for idx, line in enumerate(src.code):
            sm = WIRE_STO_RE.search(line)
            if sm and not src.suppressed(idx + 1, "wire"):
                findings.append(
                    (src.rel, idx + 1, "wire",
                     f"throwing/unbounded numeric parse '{sm.group(1)}' on "
                     f"wire-derived text — use the non-throwing bounded "
                     f"gmmcs::parse_u32/parse_u64/parse_f64 "
                     f"(common/strings.hpp)"))

        funcs = _extract_functions(src.text)
        readers = {}
        for name, params, body, off in funcs:
            rd = _io_vars(params, body, "ByteReader")
            if rd:
                readers[name] = rd

        # Helpers whose return value is a raw wire read (one file at a
        # time; two rounds catch helper-calls-helper chains).
        tainted_helpers = set()
        for _ in range(2):
            for name, params, body, off in funcs:
                if name not in readers or name in tainted_helpers:
                    continue
                tainted, sanitized, _ = _wire_scan(
                    body, {}, readers[name], tainted_helpers)
                bare = name.rsplit("::", 1)[-1]
                for rm in WIRE_RETURN_RE.finditer(body):
                    expr = rm.group(1)
                    read_alt = "|".join(sorted(readers[name]))
                    if re.search(rf"\b(?:{read_alt})\s*\.\s*(?:u8|u16|u32|u64)\s*\(",
                                 expr) and not WIRE_BOUNDED_RE.search(expr):
                        tainted_helpers.add(bare)
                        break
                    if any(_wire_active(tainted, sanitized, t, rm.start())
                           and _wire_word(t).search(expr) for t in tainted):
                        tainted_helpers.add(bare)
                        break

        # Parameter-to-sink summaries: which params reach a sink unguarded.
        sink_params = {}
        for name, params, body, off in funcs:
            pnames = _wire_param_names(params)
            if not pnames:
                continue
            for p in pnames:
                _, _, sinks = _wire_scan(body, {p: 0},
                                         readers.get(name, set()),
                                         tainted_helpers)
                if any(kind != "wrap" for _, kind, t, _ in sinks if t == p):
                    sink_params.setdefault(name.rsplit("::", 1)[-1],
                                           set()).add(p)

        # The report walk: only functions that actually see a reader.
        for name, params, body, off in funcs:
            if name not in readers:
                continue
            tainted, sanitized, sinks = _wire_scan(
                body, {}, readers[name], tainted_helpers)
            for pos, kind, t, _ in sinks:
                lineno = src.line_of(off + 1 + pos)
                if src.suppressed(lineno, "wire"):
                    continue
                if kind == "wrap":
                    findings.append(
                        (src.rel, lineno, "wire",
                         f"guard arithmetic on wire-tainted '{t}' can wrap "
                         f"before the comparison — widen with "
                         f"std::size_t{{...}}"))
                else:
                    findings.append(
                        (src.rel, lineno, "wire",
                         f"wire-tainted '{t}' {WIRE_SINK_MSG[kind]} without "
                         f"a dominating remaining()/protocol-max guard"))
            # Call sites handing tainted values to sinking helper params.
            for fname, pset in sink_params.items():
                if fname == name.rsplit("::", 1)[-1]:
                    continue
                for cm in re.finditer(rf"\b{re.escape(fname)}\s*\(", body):
                    copen = body.index("(", cm.start())
                    close = _matching_paren(body, copen)
                    if close < 0:
                        continue
                    args = _wire_split_args(body[copen + 1:close])
                    # Re-resolve the param order for position matching.
                    callee = next((f for f in funcs
                                   if f[0].rsplit("::", 1)[-1] == fname), None)
                    if callee is None:
                        continue
                    cparams = _wire_param_names(callee[1])
                    all_params = _wire_split_args(callee[1])
                    for i, argexpr in enumerate(args):
                        if i >= len(all_params):
                            break
                        ptoks = re.findall(r"[A-Za-z_]\w*", all_params[i])
                        pname = ptoks[-1] if len(ptoks) >= 2 else None
                        if pname not in pset or pname not in cparams:
                            continue
                        for t in list(tainted):
                            if _wire_active(tainted, sanitized, t, cm.start()) \
                                    and _wire_word(t).search(argexpr):
                                lineno = src.line_of(off + 1 + cm.start())
                                if not src.suppressed(lineno, "wire"):
                                    findings.append(
                                        (src.rel, lineno, "wire",
                                         f"wire-tainted '{t}' passed to "
                                         f"'{fname}({pname})', which uses it "
                                         f"as an unguarded size/bound"))
                                break
    return findings


PASSES = {
    "layering": lambda srcs: pass_layering(srcs),
    "result": lambda srcs: pass_result(srcs),
    "codec": lambda srcs: pass_codec_symmetry(srcs),
    "switch": lambda srcs: pass_switch_exhaustiveness(srcs),
    "lock-order": lambda srcs: pass_lock_order(srcs),
    "snapshot": lambda srcs: pass_snapshot(srcs),
    "lifetime": lambda srcs: pass_lifetime(srcs),
    "copy": lambda srcs: pass_copy(srcs),
    "wire": lambda srcs: pass_wire(srcs),
}

_LAMBDA_AFTER_CAPS_RE = re.compile(
    r"\]\s*(?:\((?:[^()]|\([^()]*\))*\)\s*)?"
    r"(?:mutable|noexcept|constexpr|->\s*[\w:<>]+|\s)*\{")


def _apply_lifetime_fix(text, rec):
    """Rewrites one raw capture to the weak_ptr + lock + early-return
    shape in `text`. Returns the new text, or None if the capture no
    longer matches (already fixed / moved)."""
    lines = text.splitlines(keepends=True)
    zone_start = sum(len(l) for l in lines[:rec["lineno"] - 1])
    zone = text[zone_start:zone_start + sum(
        len(l) for l in lines[rec["lineno"] - 1:rec["lineno"] + 4])]
    at = zone.find(rec["old"])
    if at < 0:
        return None
    pos = zone_start + at
    text = text[:pos] + rec["new"] + text[pos + len(rec["old"]):]
    m = _LAMBDA_AFTER_CAPS_RE.search(text, pos + len(rec["new"]))
    if not m:
        return None
    brace = m.end()
    prolog = (f" auto {rec['var']} = {rec['weak']}.lock(); "
              f"if (!{rec['var']}) return;")
    return text[:brace] + prolog + text[brace:]


def _apply_copy_fix(text, rec):
    """Applies one copy-pass rewrite: a windowed exact-text replace near
    the recorded line. Returns the new text, or None if the site no
    longer matches (already fixed / moved)."""
    lines = text.splitlines(keepends=True)
    zone_start = sum(len(l) for l in lines[:max(0, rec["lineno"] - 2)])
    zone_end = sum(len(l) for l in lines[:rec["lineno"] + 3])
    at = text.find(rec["old"], zone_start, zone_end)
    if at < 0:
        return None
    return text[:at] + rec["new"] + text[at + len(rec["old"]):]


def apply_fixes(root, findings):
    """Applies the mechanical fixes: inserting [[nodiscard]] on Result<T>
    declarations flagged by the result pass, rewriting raw captures
    flagged by the lifetime pass into the weak_ptr + lock + early-return
    shape (when the pointer's source is a shared_ptr in scope), and the
    copy pass's rewrites (by-value Bytes params to const Bytes&,
    inspect-only allocating reads to their view siblings). Returns the
    number of edits made. Idempotent by construction: a fixed site no
    longer produces the finding that drives the edit."""
    edits = 0
    # Copy-discipline rewrites (text edits; bottom-up per file).
    by_file = {}
    for rec in COPY_FIXES:
        by_file.setdefault(rec["rel"], []).append(rec)
    for rel, recs in sorted(by_file.items()):
        path = root / rel
        text = path.read_text()
        for rec in sorted(recs, key=lambda r: -r["lineno"]):
            new_text = _apply_copy_fix(text, rec)
            if new_text is not None:
                text = new_text
                edits += 1
        path.write_text(text)
    # Lifetime rewrites first (text edits; apply bottom-up per file so
    # earlier line numbers stay valid).
    by_file = {}
    for rec in LIFETIME_FIXES:
        by_file.setdefault(rec["rel"], []).append(rec)
    for rel, recs in sorted(by_file.items()):
        path = root / rel
        text = path.read_text()
        for rec in sorted(recs, key=lambda r: -r["lineno"]):
            new_text = _apply_lifetime_fix(text, rec)
            if new_text is not None:
                text = new_text
                edits += 1
        path.write_text(text)
    # [[nodiscard]] insertions.
    by_file = {}
    for rel, lineno, rule, _msg in findings:
        if rule == "nodiscard":
            by_file.setdefault(rel, set()).add(lineno)
    for rel, linenos in sorted(by_file.items()):
        path = root / rel
        raw = path.read_text().splitlines(keepends=True)
        for lineno in sorted(linenos):
            line = raw[lineno - 1]
            stripped = line.lstrip()
            indent = line[:len(line) - len(stripped)]
            raw[lineno - 1] = indent + "[[nodiscard]] " + stripped
            edits += 1
        path.write_text("".join(raw))
    return edits


def run(root, compile_commands=None, passes=None, jobs=1):
    files = collect_files(root, compile_commands)
    sources = load_sources(root, files, jobs=jobs)
    findings = []
    for src in sources:
        findings.extend(check_suppression_reasons(src))
    for name in (passes or PASSES):
        findings.extend(PASSES[name](sources))
    findings.sort()
    return findings, len(files)


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    frontend.add_frontend_args(ap)
    ap.add_argument("--passes", default=None,
                    help="comma-separated subset of: " + ",".join(PASSES))
    ap.add_argument("--fix", action="store_true",
                    help="auto-insert missing [[nodiscard]], rewrite "
                         "raw deferred captures to the weak_ptr shape, "
                         "and apply the copy pass's mechanical rewrites "
                         "(const Bytes& params, view() reads), then "
                         "re-lint")
    args = ap.parse_args()

    root = args.root.resolve()
    if not (root / "src").is_dir():
        print(f"gmmcs-lint: no src/ under {root}", file=sys.stderr)
        return 2
    ccdb = args.compile_commands or discover_compile_commands(root)
    passes = None
    if args.passes:
        passes = [p.strip() for p in args.passes.split(",") if p.strip()]
        unknown = [p for p in passes if p not in PASSES]
        if unknown:
            print(f"gmmcs-lint: unknown pass(es): {', '.join(unknown)}",
                  file=sys.stderr)
            return 2

    findings, nfiles = run(root, ccdb, passes, jobs=args.jobs)
    if args.fix:
        fixed = apply_fixes(root, findings)
        if fixed:
            print(f"gmmcs-lint: --fix rewrote {fixed} site(s)")
            findings, nfiles = run(root, ccdb, passes, jobs=args.jobs)
    for rel, lineno, rule, msg in findings:
        print(f"{rel}:{lineno}: [{rule}] {msg}")
    if findings:
        print(f"gmmcs-lint: {len(findings)} finding(s) in {nfiles} files")
        return 1
    print(f"gmmcs-lint: {nfiles} files scanned, clean "
          f"(passes: {', '.join(passes or PASSES)})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
