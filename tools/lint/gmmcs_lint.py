#!/usr/bin/env python3
"""gmmcs-lint: multi-pass conformance analyzer for the Global-MMCS tree.

Global-MMCS is a bundle of protocol stacks (XGSP, H.323, SIP, broker
events, RTP, SOAP, RTSP) that interoperate through layered translation.
Three classes of latent cross-protocol bugs survive unit tests in such a
codebase: a silent layering violation (a lower layer reaching up), a
dropped Result from a wire-data parse, and an encode/decode asymmetry
that only bites when the *other* stack parses the bytes. This linter
makes all three machine-checked. Four passes share one compilation-
database loader and one suppression syntax:

  layering         every `#include "mod/..."` edge is checked against the
                   declared layer DAG
                       common
                         -> sim / transport / xml
                         -> broker / rtp / media
                         -> h323 / sip / xgsp / soap / streaming /
                            admire / baseline
                         -> core
                   Upward includes are errors; so is any cycle in the
                   actual module graph (same-layer edges are allowed as
                   long as they stay acyclic). New top-level src/ dirs
                   must be added to LAYERS or they are errors too.

  result-discipline  (1) every function returning Result<T> must be
                   declared [[nodiscard]]; (2) a call to a known
                   Result-returning parser/decoder must not be discarded
                   as an expression statement; (3) `.value()` needs a
                   dominating ok()-style check earlier in the same
                   function (conservative text dominance — suppress the
                   rare false positive with a reason).

  codec-symmetry   for each wire-message family the encode body's write
                   sequence (ByteWriter ops, helpers spliced, loops kept
                   as groups) must equal the decode body's read sequence.
                   Dispatch decoders (one switch over the tag byte) are
                   compared per-case against the encoder that writes that
                   tag. Text/XML codecs are checked by field coverage:
                   struct members written by serialize and members
                   assigned by parse must be the same set.

  switch-exhaustiveness  a switch over a message-kind enum (MessageType,
                   RasType, Q931Type, H245Type, MsgType) must either
                   cover every enumerator or carry a default that is
                   substantive (handles the rest, e.g. returns an error)
                   or commented with a reason. A bare `default: break;`
                   silently eats future enumerators.

Suppressions: a line (or the line directly above it) containing
`gmmcs-lint: allow(<rule>): <reason>` is exempt from <rule>. The reason
text is mandatory; an empty reason is itself reported (rule
`suppression-reason`). `allow(all)` exists for generated code only.

Usage:
  gmmcs_lint.py [--compile-commands build/compile_commands.json]
                [--root REPO_ROOT] [--passes layering,result,...]

Exit status 0 = clean, 1 = findings, 2 = usage error.
"""

import argparse
import json
import re
import sys
from pathlib import Path

# --------------------------------------------------------------------------
# Configuration (edit here when the tree grows).
# --------------------------------------------------------------------------

# Module -> layer rank. An include from module A to module B is legal iff
# rank(B) <= rank(A); ties are legal but must stay acyclic.
LAYERS = {
    "common": 0,
    "sim": 1,
    "transport": 1,
    "xml": 1,
    "broker": 2,
    "rtp": 2,
    "media": 2,
    "h323": 3,
    "sip": 3,
    "xgsp": 3,
    "soap": 3,
    "streaming": 3,
    "admire": 3,
    "baseline": 3,
    "core": 4,
}

# Message-kind enums whose switches must be exhaustive (or carry a
# justified default). Keyed by enumerator spelling, values are collected
# from the enum definitions found in src/.
MESSAGE_ENUMS = {"MessageType", "RasType", "Q931Type", "H245Type", "MsgType"}

# Function base names that (in this tree) only ever name Result-returning
# wire parsers: a discarded expression-statement call to one of these is
# always a bug.
RESULT_CALL_NAMES = {
    "decode", "parse", "from_xml", "parse_rtcp", "parse_envelope",
    "parse_contact", "parse_http_request", "parse_http_response",
}

# Binary codec families: files whose ByteWriter/ByteReader functions are
# paired and sequence-compared. Pairing is automatic: Class::encode or
# Class::serialize vs Class::decode or Class::parse; write_X vs read_X and
# encode_X vs decode_X helpers; and tag-dispatch decoders (a switch whose
# cases read) vs the encoder mentioning the same tag enumerator/constant.
BINARY_CODEC_FILES = [
    "src/broker/event.cpp",
    "src/h323/messages.cpp",
    "src/rtp/packet.cpp",
    "src/rtp/rtcp.cpp",
]

# Text/XML codec families, checked by member coverage. `structs` lists
# (header, struct-name) whose data members form the field universe;
# `encode`/`decode` name the paired functions in `impl`.
TEXT_CODEC_FAMILIES = [
    dict(name="sip-message", impl="src/sip/message.cpp",
         structs=[("src/sip/message.hpp", "SipMessage")],
         encode=["SipMessage::serialize"], decode=["SipMessage::parse"],
         # `user`/`host` belong to SipUri, parsed separately.
         ignore=set()),
    dict(name="sip-sdp", impl="src/sip/sdp.cpp",
         structs=[("src/sip/sdp.hpp", "Sdp"), ("src/sip/sdp.hpp", "SdpMedia")],
         encode=["Sdp::serialize"], decode=["Sdp::parse"],
         ignore=set()),
    dict(name="rtsp", impl="src/streaming/rtsp.cpp",
         structs=[("src/streaming/rtsp.hpp", "RtspMessage")],
         encode=["RtspMessage::serialize"], decode=["RtspMessage::parse"],
         ignore=set()),
    dict(name="xgsp-message", impl="src/xgsp/messages.cpp",
         structs=[("src/xgsp/messages.hpp", "Message")],
         encode=["Message::to_xml"], decode=["Message::from_xml"],
         ignore=set()),
]

MESSAGES = {
    "layering": "%s",
    "layering-cycle": "%s",
    "nodiscard": "Result-returning declaration '%s' is missing [[nodiscard]]",
    "discarded-result": "call to Result-returning '%s' discards its result",
    "unchecked-value": "%s",
    "codec-symmetry": "%s",
    "switch-exhaustive": "%s",
    "suppression-reason": "gmmcs-lint suppression without a reason "
                          "(write `gmmcs-lint: allow(rule): why`)",
}

# --------------------------------------------------------------------------
# Shared infrastructure.
# --------------------------------------------------------------------------

SUPPRESS_RE = re.compile(r"gmmcs-lint:\s*allow\(([a-z-]+)\)(?::?\s*(.*?))?\s*(?:\*/)?\s*$")


def strip_comments(lines):
    """Blanks //- and /* */-comments; suppressions are read from raw lines."""
    out = []
    in_block = False
    for line in lines:
        res = []
        i = 0
        while i < len(line):
            if in_block:
                end = line.find("*/", i)
                if end < 0:
                    i = len(line)
                else:
                    in_block = False
                    i = end + 2
            elif line.startswith("//", i):
                break
            elif line.startswith("/*", i):
                in_block = True
                i += 2
            else:
                res.append(line[i])
                i += 1
        out.append("".join(res))
    return out


class SourceFile:
    """A parsed source file: raw lines, comment-stripped lines and text."""

    def __init__(self, path, rel):
        self.path = path
        self.rel = rel
        self.raw = path.read_text().splitlines()
        self.code = strip_comments(self.raw)
        self.text = "\n".join(self.code)
        # Offsets of line starts in `text`, for offset -> line mapping.
        self.line_starts = [0]
        for line in self.code:
            self.line_starts.append(self.line_starts[-1] + len(line) + 1)

    def line_of(self, offset):
        lo, hi = 0, len(self.line_starts) - 1
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if self.line_starts[mid] <= offset:
                lo = mid
            else:
                hi = mid - 1
        return lo + 1  # 1-based

    def suppressed(self, lineno, rule):
        """True if 1-based `lineno` (or the line above) allows `rule`."""
        for look in (lineno - 1, lineno - 2):
            if look < 0 or look >= len(self.raw):
                continue
            m = SUPPRESS_RE.search(self.raw[look])
            if m and m.group(1) in (rule, "all"):
                return True
        return False


def check_suppression_reasons(src):
    """The meta-rule: every suppression must carry a reason."""
    findings = []
    for idx, line in enumerate(src.raw):
        m = SUPPRESS_RE.search(line)
        if m and not (m.group(2) or "").strip():
            findings.append((src.rel, idx + 1, "suppression-reason",
                             MESSAGES["suppression-reason"]))
    return findings


def collect_files(root, compile_commands):
    """src/ headers plus every src/ TU the build compiles (falls back to a
    directory walk when no database is available)."""
    src = root / "src"
    files = set(src.rglob("*.hpp")) | set(src.rglob("*.h"))
    used_db = False
    if compile_commands and compile_commands.is_file():
        try:
            db = json.loads(compile_commands.read_text())
            for entry in db:
                f = Path(entry["file"])
                if not f.is_absolute():
                    f = Path(entry.get("directory", ".")) / f
                f = f.resolve()
                if src.resolve() in f.parents and f.is_file():
                    files.add(f)
                    used_db = True
        except (json.JSONDecodeError, KeyError, OSError) as e:
            print(f"gmmcs-lint: warning: bad compilation database: {e}",
                  file=sys.stderr)
    if not used_db:
        files |= set(src.rglob("*.cpp"))
    return sorted(files)


def load_sources(root, files):
    out = []
    for f in files:
        rel = f.resolve().relative_to(root).as_posix()
        out.append(SourceFile(f, rel))
    return out


# --------------------------------------------------------------------------
# Pass 1: layering.
# --------------------------------------------------------------------------

INCLUDE_RE = re.compile(r'#\s*include\s*"([^"]+)"')


def pass_layering(sources, layers=None):
    layers = layers if layers is not None else LAYERS
    findings = []
    edges = {}  # (from_mod, to_mod) -> first (rel, lineno) seen
    for src in sources:
        parts = src.rel.split("/")
        if len(parts) < 3 or parts[0] != "src":
            continue
        mod = parts[1]
        if mod not in layers:
            findings.append((src.rel, 1, "layering",
                             f"module '{mod}' is not in the declared layer DAG "
                             f"(add it to LAYERS in gmmcs_lint.py)"))
            continue
        for idx, line in enumerate(src.code):
            for m in INCLUDE_RE.finditer(line):
                inc = m.group(1)
                if "/" not in inc:
                    continue
                to_mod = inc.split("/")[0]
                if to_mod not in layers:
                    continue  # not a src/ module include (e.g. generated)
                if to_mod == mod:
                    continue
                if src.suppressed(idx + 1, "layering"):
                    continue
                if layers[to_mod] > layers[mod]:
                    findings.append(
                        (src.rel, idx + 1, "layering",
                         f"upward include: layer-{layers[mod]} module '{mod}' "
                         f"includes layer-{layers[to_mod]} module '{to_mod}' "
                         f"(\"{inc}\")"))
                edges.setdefault((mod, to_mod), (src.rel, idx + 1))
    # Cycle detection over the actual module graph (covers same-layer ties).
    graph = {}
    for (a, b) in edges:
        graph.setdefault(a, set()).add(b)
    state = {}  # 0=visiting, 1=done
    stack = []

    def dfs(node):
        state[node] = 0
        stack.append(node)
        for nxt in sorted(graph.get(node, ())):
            if state.get(nxt) == 0:
                cycle = stack[stack.index(nxt):] + [nxt]
                rel, lineno = edges[(node, nxt)]
                findings.append((rel, lineno, "layering-cycle",
                                 "module cycle: " + " -> ".join(cycle)))
            elif nxt not in state:
                dfs(nxt)
        stack.pop()
        state[node] = 1

    for node in sorted(graph):
        if node not in state:
            dfs(node)
    return findings


# --------------------------------------------------------------------------
# Pass 2: result discipline.
# --------------------------------------------------------------------------

RESULT_DECL_RE = re.compile(
    r"^\s*(?P<nd>\[\[nodiscard\]\]\s+)?(?:static\s+)?(?:gmmcs::)?Result<")
DECL_NAME_RE = re.compile(r">\s*&?\s*(?P<name>[\w:]+)\s*\(")
VALUE_USE_RE = re.compile(r"\.\s*value\s*\(\s*\)")


def _decl_name(line):
    """Function name of a `Result<...> name(...)` line, or None."""
    # Find the matching '>' of the Result template argument list.
    start = line.find("Result<")
    depth = 0
    i = start + len("Result<") - 1
    while i < len(line):
        if line[i] == "<":
            depth += 1
        elif line[i] == ">":
            depth -= 1
            if depth == 0:
                break
        i += 1
    m = DECL_NAME_RE.match(line, i)
    return m.group("name") if m else None


def pass_result(sources, call_names=None):
    call_names = call_names if call_names is not None else RESULT_CALL_NAMES
    findings = []

    # Names declared Result-returning in headers: their .cpp definitions
    # need no repeated attribute (it lives on the first declaration).
    header_declared = set()
    for src in sources:
        if not src.rel.endswith((".hpp", ".h")):
            continue
        for line in src.code:
            if RESULT_DECL_RE.match(line):
                name = _decl_name(line)
                if name:
                    header_declared.add(name.split("::")[-1])

    for src in sources:
        is_header = src.rel.endswith((".hpp", ".h"))
        for idx, line in enumerate(src.code):
            m = RESULT_DECL_RE.match(line)
            if not m:
                continue
            name = _decl_name(line)
            if name is None:
                continue
            if not is_header:
                if "::" in name:
                    continue  # out-of-line member def; attribute is on the decl
                if name in header_declared:
                    continue  # free-function def; attribute is on the decl
            has_nd = bool(m.group("nd")) or "[[nodiscard]]" in src.code[idx - 1:idx]
            if not has_nd and not src.suppressed(idx + 1, "nodiscard"):
                findings.append((src.rel, idx + 1, "nodiscard",
                                 MESSAGES["nodiscard"] % name))

        # (2) discarded expression-statement calls to known parser names.
        discard_re = re.compile(
            r"^\s*(?:[A-Za-z_]\w*(?:::|\.|->))*(?P<name>"
            + "|".join(sorted(call_names)) + r")\s*\(")
        prev_code = ""
        for idx, line in enumerate(src.code):
            stripped = line.strip()
            if stripped:
                dm = discard_re.match(line)
                starts_statement = prev_code == "" or prev_code[-1] in ";{}:"
                if dm and starts_statement and not src.suppressed(idx + 1, "discarded-result"):
                    findings.append((src.rel, idx + 1, "discarded-result",
                                     MESSAGES["discarded-result"] % dm.group("name")))
                prev_code = stripped
        # (3) .value() without a dominating ok() check.
        findings.extend(_check_value_calls(src))
    return findings


def _function_span_start(src, lineno):
    """Crude function boundary: the line after the most recent column-0 `}`."""
    for j in range(lineno - 1, -1, -1):
        if src.code[j].startswith("}"):
            return j + 1
    return 0


def _value_receiver(code_line, col):
    """Receiver expression of a `.value()` at `col` (index of the dot).
    Returns (kind, name): kind 'var' for an identifier (possibly through
    std::move), 'chain' for a direct call chain like parse(x).value()."""
    i = col - 1
    while i >= 0 and code_line[i].isspace():
        i -= 1
    if i >= 0 and code_line[i] == ")":
        depth = 0
        while i >= 0:
            if code_line[i] == ")":
                depth += 1
            elif code_line[i] == "(":
                depth -= 1
                if depth == 0:
                    break
            i -= 1
        inner = code_line[i + 1:col].rstrip(") \t")
        j = i - 1
        while j >= 0 and (code_line[j].isalnum() or code_line[j] in "_:"):
            j -= 1
        callee = code_line[j + 1:i]
        if callee.endswith("move"):
            m = re.match(r"\s*([A-Za-z_]\w*)\s*$", inner)
            if m:
                return "var", m.group(1)
        return "chain", callee or "<expr>"
    j = i
    while j >= 0 and (code_line[j].isalnum() or code_line[j] == "_"):
        j -= 1
    name = code_line[j + 1:i + 1]
    return ("var", name) if name else ("chain", "<expr>")


def _check_value_calls(src):
    findings = []
    for idx, line in enumerate(src.code):
        for m in VALUE_USE_RE.finditer(line):
            lineno = idx + 1
            if src.suppressed(lineno, "unchecked-value"):
                continue
            kind, name = _value_receiver(line, m.start())
            if kind == "var" and name:
                start = _function_span_start(src, idx)
                span = "\n".join(src.code[start:idx + 1])
                guard = re.compile(
                    rf"\b{re.escape(name)}\s*\.\s*ok\s*\(\s*\)"
                    rf"|!\s*{re.escape(name)}\b"
                    rf"|(?:if|while)\s*\(\s*{re.escape(name)}\s*\)"
                    rf"|\(\s*{re.escape(name)}\s*&&|&&\s*{re.escape(name)}\b"
                    rf"|\b{re.escape(name)}\s*\?")
                if guard.search(span):
                    continue
                findings.append((src.rel, lineno, "unchecked-value",
                                 f"'{name}.value()' has no dominating "
                                 f"'{name}.ok()'-style check in this function"))
            else:
                findings.append((src.rel, lineno, "unchecked-value",
                                 f".value() chained directly onto '{name}(...)' "
                                 f"— bind the Result and check ok() first"))
    return findings


# --------------------------------------------------------------------------
# Pass 3: codec symmetry.
# --------------------------------------------------------------------------
#
# Binary codecs: we extract, for every function in a codec file, the
# ordered sequence of ByteWriter/ByteReader operations (u8/u16/u32/u64/
# lstr/str/raw/skip), with calls to sibling helper functions spliced in
# and loop bodies kept as nested groups:  ["u8", ["u32"], "lstr"] means
# u8, a repeated u32, then lstr. str/raw/skip normalize to "raw" (all are
# length-carried byte runs). Then we pair encoders with decoders and
# compare sequences; a mismatch is wire drift.

OP_NORMALIZE = {"u8": "u8", "u16": "u16", "u32": "u32", "u64": "u64",
                "lstr": "lstr", "str": "raw", "raw": "raw", "skip": "raw"}

FUNC_HEAD_RE = re.compile(
    r"(?:^|\n)\s*(?:template\s*<[^>]*>\s*)?"
    r"(?P<head>[A-Za-z_][\w:<>,&*\s\[\]]*?)\s*"
    r"\(", re.S)


def _extract_functions(text):
    """Yields (name, params, body, offset) for every function definition.

    Walks the text tracking brace depth; `namespace X {` is transparent,
    class/struct/enum bodies are skipped (methods defined inline in codec
    files are not a thing here). A function is a top-level `... name(args)
    [const] {` with a balanced body."""
    funcs = []
    i, n = 0, len(text)
    depth = 0
    while i < n:
        c = text[i]
        if c == "{":
            # Look backwards for what opened this brace.
            seg_start = max(text.rfind(";", 0, i), text.rfind("}", 0, i),
                            text.rfind("{", 0, i)) + 1
            seg = text[seg_start:i]
            if re.search(r"\b(namespace)\b", seg):
                depth += 0  # transparent: descend
                i += 1
                continue
            if re.search(r"\b(struct|class|enum|union)\b", seg) and "(" not in seg:
                i = _skip_braces(text, i)
                continue
            pm = re.search(r"([\w:~]+)\s*\(", seg)
            if pm and not re.search(r"\b(if|for|while|switch|return|catch)\s*\($",
                                    seg[:pm.end()]):
                name = pm.group(1)
                close = _matching_paren(text, seg_start + pm.end() - 1)
                params = text[seg_start + pm.end():close] if close > 0 else ""
                end = _skip_braces(text, i)
                funcs.append((name, params, text[i + 1:end - 1], i))
                i = end
                continue
            i += 1
        else:
            i += 1
    return funcs


def _matching_paren(text, open_idx):
    depth = 0
    for i in range(open_idx, len(text)):
        if text[i] == "(":
            depth += 1
        elif text[i] == ")":
            depth -= 1
            if depth == 0:
                return i
    return -1


def _skip_braces(text, open_idx):
    depth = 0
    for i in range(open_idx, len(text)):
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth == 0:
                return i + 1
    return len(text)


def _io_vars(params, body, cls):
    """Names of ByteWriter/ByteReader variables visible in a function."""
    names = set()
    for m in re.finditer(rf"\b{cls}\s*&?\s*([A-Za-z_]\w*)", params):
        names.add(m.group(1))
    for m in re.finditer(rf"\b{cls}\s+([A-Za-z_]\w*)\s*[;({{]", body):
        names.add(m.group(1))
    return names


def _extract_seq(body, io_names, helpers):
    """Nested op sequence of `body`. Loops become sub-lists."""
    tokens = []
    io_alt = "|".join(sorted(io_names)) if io_names else r"(?!x)x"
    helper_alt = "|".join(sorted(helpers)) if helpers else r"(?!x)x"
    tok_re = re.compile(
        rf"\b(?P<io>{io_alt})\s*\.\s*(?P<op>u8|u16|u32|u64|lstr|str|raw|skip)\s*\("
        rf"|\b(?P<helper>{helper_alt})\s*\("
        rf"|\b(?P<loop>for|while)\s*\(")
    i = 0
    while i < len(body):
        m = tok_re.search(body, i)
        if not m:
            break
        if m.group("op"):
            tokens.append(OP_NORMALIZE[m.group("op")])
            i = m.end()
        elif m.group("helper"):
            tokens.append(("call", m.group("helper")))
            i = m.end()
        else:  # loop: wrap the body extent in a group
            close = _matching_paren(body, body.index("(", m.start()))
            if close < 0:
                i = m.end()
                continue
            j = close + 1
            while j < len(body) and body[j].isspace():
                j += 1
            if j < len(body) and body[j] == "{":
                end = _skip_braces(body, j)
                inner = body[j + 1:end - 1]
            else:
                end = body.find(";", j) + 1 or len(body)
                inner = body[j:end]
            group = _extract_seq(inner, io_names, helpers)
            if group:
                tokens.append(group)
            i = end
    return tokens


def _splice(seq, seqs_by_name, active=()):
    """Resolves ("call", helper) markers into the helper's own sequence."""
    out = []
    for tok in seq:
        if isinstance(tok, list):
            out.append(_splice(tok, seqs_by_name, active))
        elif isinstance(tok, tuple):
            name = tok[1]
            if name in active:  # recursion guard
                continue
            out.extend(_splice(seqs_by_name.get(name, []), seqs_by_name,
                               active + (name,)))
        else:
            out.append(tok)
    return out


def _fmt_seq(seq):
    parts = []
    for tok in seq:
        parts.append(f"[{_fmt_seq(tok)}]*" if isinstance(tok, list) else tok)
    return " ".join(parts)


CASE_RE = re.compile(r"\bcase\s+(?:[\w:]+::)?(\w+)\s*:")


def _split_dispatch(body):
    """For a tag-dispatch decoder: (prefix_text, {label: case_text}) or None.

    A dispatch decoder reads a tag then switches on it, reading fields in
    the cases. Returns None when the body has no switch (or the switch
    reads nothing — a validation switch, not a dispatch)."""
    m = re.search(r"\bswitch\s*\(", body)
    if not m:
        return None
    close = _matching_paren(body, body.index("(", m.start()))
    j = body.find("{", close)
    if j < 0:
        return None
    end = _skip_braces(body, j)
    switch_body = body[j + 1:end - 1]
    prefix = body[:m.start()]
    cases = {}
    pending = []
    pos = 0
    segments = []  # (labels, text)
    for cm in CASE_RE.finditer(switch_body):
        if pending and switch_body[pos:cm.start()].strip(" \n"):
            segments.append((pending, switch_body[pos:cm.start()]))
            pending = []
        pending.append(cm.group(1))
        pos = cm.end()
    dm = re.search(r"\bdefault\s*:", switch_body[pos:])
    tail_end = pos + dm.start() if dm else len(switch_body)
    if pending:
        segments.append((pending, switch_body[pos:tail_end]))
    for labels, text in segments:
        for lab in labels:
            cases[lab] = text
    return prefix, cases


def pass_codec_symmetry(sources, codec_files=None, text_families=None):
    codec_files = codec_files if codec_files is not None else BINARY_CODEC_FILES
    text_families = text_families if text_families is not None else TEXT_CODEC_FAMILIES
    findings = []
    by_rel = {s.rel: s for s in sources}
    for rel in codec_files:
        src = by_rel.get(rel)
        if src is None:
            continue
        findings.extend(_check_binary_codec(src))
    for fam in text_families:
        findings.extend(_check_text_codec(by_rel, fam))
    return findings


def _check_binary_codec(src):
    findings = []
    funcs = _extract_functions(src.text)
    names = [f[0] for f in funcs]
    helper_names = {n for n in names if "::" not in n}

    writer_seqs, reader_seqs = {}, {}
    raw_seqs = {}
    offsets = {}
    bodies = {}
    for name, params, body, off in funcs:
        wr = _io_vars(params, body, "ByteWriter")
        rd = _io_vars(params, body, "ByteReader")
        offsets[name] = off
        bodies[name] = body
        if wr:
            raw_seqs[name] = _extract_seq(body, wr, helper_names)
            writer_seqs[name] = raw_seqs[name]
        elif rd:
            raw_seqs[name] = _extract_seq(body, rd, helper_names)
            reader_seqs[name] = raw_seqs[name]

    def resolved(name):
        return _splice(raw_seqs.get(name, []), raw_seqs)

    def report(where, enc, dec, enc_seq, dec_seq):
        lineno = src.line_of(offsets.get(where, 0))
        if src.suppressed(lineno, "codec-symmetry"):
            return
        findings.append(
            (src.rel, lineno, "codec-symmetry",
             f"encode/decode drift for {enc} vs {dec}: "
             f"write seq [{_fmt_seq(enc_seq)}] != read seq [{_fmt_seq(dec_seq)}]"))

    # --- method pairs: Class::{encode,serialize} vs Class::{decode,parse} ---
    paired_decoders = set()
    for name in writer_seqs:
        if "::" not in name:
            continue
        cls = name.rsplit("::", 1)[0]
        for dec_suffix in ("decode", "parse"):
            dec = f"{cls}::{dec_suffix}"
            if dec in reader_seqs:
                enc_seq, dec_seq = resolved(name), resolved(dec)
                if enc_seq and dec_seq and enc_seq != dec_seq:
                    report(dec, name, dec, enc_seq, dec_seq)
                paired_decoders.add(dec)

    # --- helper pairs: write_X/read_X, encode_X/decode_X ---
    for name in writer_seqs:
        for w_pre, r_pre in (("write_", "read_"), ("encode_", "decode_")):
            if name.startswith(w_pre):
                dec = r_pre + name[len(w_pre):]
                if dec in reader_seqs:
                    enc_seq, dec_seq = resolved(name), resolved(dec)
                    if enc_seq != dec_seq:
                        report(dec, name, dec, enc_seq, dec_seq)
                    paired_decoders.add(dec)

    # --- dispatch decoders: per-case comparison against tag encoders ---
    for dec_name, seq in reader_seqs.items():
        if dec_name in paired_decoders:
            continue
        split = _split_dispatch(bodies[dec_name])
        if split is None:
            continue
        prefix_text, cases = split
        rd = _io_vars("", bodies[dec_name], "ByteReader") or \
            _io_vars(next(p for n, p, b, o in funcs if n == dec_name),
                     bodies[dec_name], "ByteReader")
        case_seqs = {lab: _splice(_extract_seq(text, rd, helper_names), raw_seqs)
                     for lab, text in cases.items()}
        if not any(case_seqs.values()):
            continue  # validation switch, not a dispatch decoder
        prefix_seq = _splice(_extract_seq(prefix_text, rd, helper_names), raw_seqs)
        # Pair each encoder with the tags its body mentions.
        for enc_name in writer_seqs:
            tags = set(re.findall(r"\b(?:[\w:]+::)?(k\w+)\b", bodies[enc_name]))
            hit = sorted(tags & set(case_seqs))
            for tag in hit:
                enc_seq = resolved(enc_name)
                want = prefix_seq + case_seqs[tag]
                if enc_seq and enc_seq != want:
                    report(dec_name, f"{enc_name} (tag {tag})", dec_name,
                           enc_seq, want)
    return findings


MEMBER_DECL_RE = re.compile(
    r"^\s*(?!return\b|using\b|static\b|friend\b|typedef\b|public|private|protected)"
    r"[\w:<>,\s&*]+?[\s&*](\w+)\s*(?:=[^;]*|\{[^;]*\})?;\s*$")


def _struct_members(src, struct):
    """Data-member names of `struct` as declared in `src`."""
    m = re.search(rf"\b(?:struct|class)\s+{struct}\b[^;{{]*\{{", src.text)
    if not m:
        return set()
    end = _skip_braces(src.text, src.text.index("{", m.start()))
    body = src.text[m.start():end]
    members = set()
    for line in body.splitlines():
        if "(" in line or ")" in line:
            continue
        dm = MEMBER_DECL_RE.match(line)
        if dm:
            members.add(dm.group(1))
    return members


def _check_text_codec(by_rel, fam):
    impl = by_rel.get(fam["impl"])
    if impl is None:
        return []
    members = set()
    for header_rel, struct in fam["structs"]:
        hdr = by_rel.get(header_rel)
        if hdr is not None:
            members |= _struct_members(hdr, struct)
    members -= set(fam.get("ignore", ()))
    if not members:
        return []
    funcs = {n: (b, o) for n, p, b, o in _extract_functions(impl.text)}

    def gather(fn_names, pattern_fn):
        got = set()
        for fn in fn_names:
            if fn not in funcs:
                continue
            body = funcs[fn][0]
            got |= pattern_fn(body)
        return got

    written = gather(fam["encode"],
                     lambda body: {w for w in members
                                   if re.search(rf"\b{re.escape(w)}\b", body)})
    assigned = gather(fam["decode"],
                      lambda body: {w for w in members if re.search(
                          rf"\b\w+\s*\.\s*{re.escape(w)}\s*"
                          rf"(?:=[^=]|\.push_back|\.emplace_back)", body)})
    findings = []
    anchor_fn = fam["decode"][0]
    lineno = impl.line_of(funcs[anchor_fn][1]) if anchor_fn in funcs else 1
    if impl.suppressed(lineno, "codec-symmetry"):
        return []
    for field in sorted(written - assigned):
        findings.append((impl.rel, lineno, "codec-symmetry",
                         f"{fam['name']}: field '{field}' is serialized by "
                         f"{'/'.join(fam['encode'])} but never assigned by "
                         f"{'/'.join(fam['decode'])} (lost on round-trip)"))
    for field in sorted(assigned - written):
        findings.append((impl.rel, lineno, "codec-symmetry",
                         f"{fam['name']}: field '{field}' is parsed by "
                         f"{'/'.join(fam['decode'])} but never written by "
                         f"{'/'.join(fam['encode'])} (phantom field)"))
    return findings


# --------------------------------------------------------------------------
# Pass 4: switch exhaustiveness.
# --------------------------------------------------------------------------

ENUM_DEF_RE = re.compile(r"\benum\s+class\s+(\w+)[^{;]*\{")
ENUMERATOR_RE = re.compile(r"^\s*(k\w+)\s*(?:=[^,}]*)?[,}]?", re.M)


def collect_enums(sources, wanted=None):
    wanted = wanted if wanted is not None else MESSAGE_ENUMS
    enums = {}
    for src in sources:
        for m in ENUM_DEF_RE.finditer(src.text):
            name = m.group(1)
            if name not in wanted:
                continue
            end = _skip_braces(src.text, src.text.index("{", m.start()))
            body = src.text[src.text.index("{", m.start()) + 1:end - 1]
            vals = []
            for line in body.splitlines():
                em = ENUMERATOR_RE.match(line)
                if em:
                    vals.append(em.group(1))
            if vals:
                enums[name] = vals
    return enums


def pass_switch_exhaustiveness(sources, enums=None):
    if enums is None:
        enums = collect_enums(sources)
    findings = []
    for src in sources:
        for m in re.finditer(r"\bswitch\s*\(", src.text):
            close = _matching_paren(src.text, src.text.index("(", m.start()))
            j = src.text.find("{", close)
            if j < 0:
                continue
            end = _skip_braces(src.text, j)
            body = src.text[j + 1:end - 1]
            labels = set(CASE_RE.findall(body))
            if not labels:
                continue
            # Which configured enum is this switch over? The one whose
            # enumerator set contains every label.
            owner = None
            for ename, vals in enums.items():
                if labels <= set(vals):
                    owner = ename
                    break
            if owner is None:
                continue
            lineno = src.line_of(m.start())
            if src.suppressed(lineno, "switch-exhaustive"):
                continue
            missing = [v for v in enums[owner] if v not in labels]
            if not missing:
                continue
            dm = re.search(r"\bdefault\s*:", body)
            if not dm:
                findings.append(
                    (src.rel, lineno, "switch-exhaustive",
                     f"switch over {owner} misses enumerators "
                     f"{', '.join(missing)} and has no default"))
                continue
            # Default present: it must be substantive (more than `break;`)
            # or carry a comment explaining why the rest is ignorable.
            default_body = body[dm.end():]
            nxt = CASE_RE.search(default_body)
            if nxt:
                default_body = default_body[:nxt.start()]
            code_only = strip_comments(default_body.splitlines())
            substance = "".join(code_only).replace("break;", "").strip(" \n\t}")
            # Raw text (with comments) for the reason check: find the raw
            # region via line numbers.
            start_line = src.line_of(j + 1 + dm.start())
            end_line = min(start_line + len(default_body.splitlines()) + 1,
                           len(src.raw))
            raw_region = "\n".join(src.raw[start_line - 1:end_line])
            has_comment = "//" in raw_region or "/*" in raw_region
            if not substance and not has_comment:
                findings.append(
                    (src.rel, lineno, "switch-exhaustive",
                     f"switch over {owner} misses {', '.join(missing)} behind a "
                     f"bare `default: break;` — handle them or comment why "
                     f"they are ignorable"))
    return findings


# --------------------------------------------------------------------------
# Driver.
# --------------------------------------------------------------------------

PASSES = {
    "layering": lambda srcs: pass_layering(srcs),
    "result": lambda srcs: pass_result(srcs),
    "codec": lambda srcs: pass_codec_symmetry(srcs),
    "switch": lambda srcs: pass_switch_exhaustiveness(srcs),
}


def run(root, compile_commands=None, passes=None):
    files = collect_files(root, compile_commands)
    sources = load_sources(root, files)
    findings = []
    for src in sources:
        findings.extend(check_suppression_reasons(src))
    for name in (passes or PASSES):
        findings.extend(PASSES[name](sources))
    findings.sort()
    return findings, len(files)


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--compile-commands", type=Path, default=None,
                    help="compile_commands.json from the build tree")
    ap.add_argument("--root", type=Path, default=Path.cwd(),
                    help="repository root (default: cwd)")
    ap.add_argument("--passes", default=None,
                    help="comma-separated subset of: " + ",".join(PASSES))
    args = ap.parse_args()

    root = args.root.resolve()
    if not (root / "src").is_dir():
        print(f"gmmcs-lint: no src/ under {root}", file=sys.stderr)
        return 2
    passes = None
    if args.passes:
        passes = [p.strip() for p in args.passes.split(",") if p.strip()]
        unknown = [p for p in passes if p not in PASSES]
        if unknown:
            print(f"gmmcs-lint: unknown pass(es): {', '.join(unknown)}",
                  file=sys.stderr)
            return 2

    findings, nfiles = run(root, args.compile_commands, passes)
    for rel, lineno, rule, msg in findings:
        print(f"{rel}:{lineno}: [{rule}] {msg}")
    if findings:
        print(f"gmmcs-lint: {len(findings)} finding(s) in {nfiles} files")
        return 1
    print(f"gmmcs-lint: {nfiles} files scanned, clean "
          f"(passes: {', '.join(passes or PASSES)})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
