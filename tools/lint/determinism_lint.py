#!/usr/bin/env python3
"""Determinism linter for the Global-MMCS simulation core.

The repo's headline invariant is that a run is a pure function of its
config + seed: same inputs, byte-identical metrics — serial or parallel
(DESIGN.md §9). This linter statically rejects the ways C++ code usually
breaks that, anywhere under src/:

  wall-clock           std::chrono / clock_gettime / time(nullptr)...:
                       simulated code must use sim time (common/time.hpp).
                       Benches may measure wall clock; they live outside
                       src/ and are not scanned.
  ambient-random       std::rand, std::random_device, mt19937...: all
                       randomness must flow through the seeded gmmcs::Rng
                       (src/common/random.*, the one allowed home).
  pointer-format       "%p" / streaming void*: addresses differ run to run
                       (ASLR), so they must never reach logs or metrics.
  raw-threading        std::mutex / std::thread & friends outside the
                       annotated wrappers (src/common/mutex.hpp,
                       src/common/thread.hpp): thread-safety analysis and
                       the determinism argument only cover the wrappers.
  unordered-iteration  range-for over a std::unordered_{map,set} member:
                       hash-order iteration feeding scheduling or output
                       is run-to-run nondeterministic across libstdc++
                       versions. Order-independent uses (sums, counts)
                       carry an explicit suppression.

Suppressions: a line (or the line directly above it) containing
`det-lint: allow(<rule>)` or `NOLINT` is exempt — used sparingly, with a
justification, e.g. the sanctioned wrapper internals.

Usage:
  determinism_lint.py [--compile-commands build/compile_commands.json]
                      [--root REPO_ROOT] [--jobs N]

File discovery and parsing are shared with gmmcs_lint.py
(tools/lint/frontend.py): every src/ translation unit listed in the
compilation database (so exactly what the build compiles, nothing stale)
plus all src/ headers; falls back to a directory walk when no database
is available. Exit status 0 = clean, 1 = findings, 2 = usage error.
"""

import argparse
import re
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
from frontend import (add_frontend_args, collect_files,  # noqa: E402
                      discover_compile_commands, load_sources)

RULES = {
    "wall-clock": [
        r"std::chrono",
        r"#\s*include\s*<chrono>",
        r"\bgettimeofday\b",
        r"\bclock_gettime\b",
        r"\btimespec_get\b",
        r"\b(steady|system|high_resolution)_clock\b",
        r"\btime\s*\(\s*(NULL|nullptr|0)\s*\)",
        r"\bclock\s*\(\s*\)",
    ],
    "ambient-random": [
        r"\bstd::rand\b",
        r"\bsrand\s*\(",
        r"\brand\s*\(\s*\)",
        r"\brandom_device\b",
        r"\bmt19937(_64)?\b",
        r"\bminstd_rand",
        r"\barc4random",
        r"\bdrand48\b",
        r"#\s*include\s*<random>",
    ],
    "pointer-format": [
        r'"[^"\n]*%p',
        r"<<\s*static_cast<\s*(const\s+)?void\s*\*\s*>",
    ],
    "raw-threading": [
        r"\bstd::(mutex|recursive_mutex|shared_mutex|timed_mutex)\b",
        r"\bstd::condition_variable\b",
        r"\bstd::(thread|jthread)\b",
        r"\bstd::(lock_guard|scoped_lock|unique_lock|shared_lock)\b",
        r"\bstd::(async|promise|packaged_task)\b",
        r"\bpthread_[a-z_]+\s*\(",
        r"#\s*include\s*<(thread|mutex|shared_mutex|condition_variable|future)>",
    ],
}

# Files where a rule is allowed wholesale: the sanctioned homes.
ALLOWED_FILES = {
    "ambient-random": {"src/common/random.hpp", "src/common/random.cpp"},
    "raw-threading": {
        "src/common/mutex.hpp",
        "src/common/thread.hpp",
        "src/common/thread_annotations.hpp",
    },
}

MESSAGES = {
    "wall-clock": "wall-clock time in simulated code (use sim time, common/time.hpp)",
    "ambient-random": "ambient randomness (use the seeded gmmcs::Rng, common/random.hpp)",
    "pointer-format": "formats a pointer value (nondeterministic under ASLR)",
    "raw-threading": "raw threading primitive (use gmmcs::Mutex/MutexLock/Thread wrappers)",
    "unordered-iteration": (
        "range-for over unordered container '%s' (hash order is not deterministic; "
        "suppress only if the loop body is order-independent)"
    ),
}

UNORDERED_DECL_RE = re.compile(
    r"\bstd::unordered_(?:map|set|multimap|multiset)\s*<.*>\s+([A-Za-z_]\w*)\s*[;{=]"
)
RANGE_FOR_RE = re.compile(r"\bfor\s*\(.*:\s*(?:\w+(?:->|\.))?([A-Za-z_]\w*)\s*\)")
INCLUDE_RE = re.compile(r'#\s*include\s*"([^"]+)"')

COMPILED_RULES = {
    rule: [re.compile(p) for p in pats] for rule, pats in RULES.items()
}


def collect_unordered_names(sources):
    """Per-file sets of identifiers declared as unordered containers, in
    the file itself or in src/ headers it directly includes (the class
    header of a .cpp). Scoped per file so a std::map member that happens
    to share a name with another class's unordered member elsewhere does
    not false-positive."""
    own = {}
    includes = {}
    for src in sources:
        names = set()
        incs = []
        for line in src.code:
            for m in UNORDERED_DECL_RE.finditer(line):
                names.add(m.group(1))
            for m in INCLUDE_RE.finditer(line):
                incs.append("src/" + m.group(1))
        own[src.rel] = names
        includes[src.rel] = incs
    scoped = {}
    for rel in own:
        names = set(own[rel])
        for inc in includes[rel]:
            names |= own.get(inc, set())
        scoped[rel] = names
    return scoped


def lint_source(src, unordered_names):
    findings = []
    for idx, line in enumerate(src.code):
        for rule, patterns in COMPILED_RULES.items():
            if src.rel in ALLOWED_FILES.get(rule, ()):
                continue
            # pointer-format must look inside string literals; everything
            # else matches the comment-stripped code directly.
            for pat in patterns:
                if pat.search(line):
                    if not src.suppressed(idx + 1, rule, tool="det-lint"):
                        findings.append((idx + 1, rule, MESSAGES[rule]))
                    break
        for m in RANGE_FOR_RE.finditer(line):
            name = m.group(1)
            if name in unordered_names and \
                    not src.suppressed(idx + 1, "unordered-iteration",
                                       tool="det-lint"):
                findings.append(
                    (idx + 1, "unordered-iteration",
                     MESSAGES["unordered-iteration"] % name))
    return findings


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    add_frontend_args(ap)
    args = ap.parse_args()

    root = args.root.resolve()
    if not (root / "src").is_dir():
        print(f"determinism-lint: no src/ under {root}", file=sys.stderr)
        return 2

    ccdb = args.compile_commands or discover_compile_commands(root)
    files = collect_files(root, ccdb, tool="determinism-lint")
    sources = load_sources(root, files, jobs=args.jobs)
    scoped_names = collect_unordered_names(sources)
    total = 0
    for src in sources:
        for lineno, rule, msg in lint_source(
                src, scoped_names.get(src.rel, set())):
            print(f"{src.rel}:{lineno}: [{rule}] {msg}")
            total += 1
    if total:
        print(f"determinism-lint: {total} finding(s) in {len(files)} files")
        return 1
    print(f"determinism-lint: {len(files)} files scanned, clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
