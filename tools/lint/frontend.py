#!/usr/bin/env python3
"""Shared lint frontend for the Global-MMCS tree.

Both linters (determinism_lint.py and gmmcs_lint.py) scan the same
surface: every src/ header plus every src/ translation unit the build
actually compiles, read through the build tree's compilation database so
the scan matches exactly what ships. That discovery/parsing logic used
to be duplicated in each tool (and a third time in scripts/check.sh's
build-tree search); it lives here now.

Provides:
  discover_compile_commands(root)   first build*/compile_commands.json
  collect_files(root, ccdb, tool)   headers + DB-listed TUs (walk fallback)
  strip_comments(lines)             //- and /* */-comments blanked
  SourceFile                        raw + comment-stripped view of a file
  load_sources(root, files, jobs)   parse files, optionally in parallel

`jobs > 1` parses translation units on a process pool — parsing
(read + comment strip + line index) is the per-file frontend cost shared
by all seven gmmcs-lint passes, so it is the part worth parallelising;
the passes themselves run on the already-parsed sources.
"""

import json
import re
import sys
from pathlib import Path

# Matches both linters' suppression comments so SourceFile.suppressed can
# serve either tool; each linter still applies its own prefix.
_SUPPRESS_RES = {
    "gmmcs-lint": re.compile(
        r"gmmcs-lint:\s*allow\(([a-z-]+)\)(?::?\s*(.*?))?\s*(?:\*/)?\s*$"),
    "det-lint": re.compile(r"det-lint:\s*allow\(([a-z-]+)\)|NOLINT"),
}


def discover_compile_commands(root):
    """First compile_commands.json found under root's build trees
    (build/ first, then build-*/ alphabetically), or None."""
    root = Path(root)
    trees = [root / "build"] + sorted(
        p for p in root.glob("build-*") if p.is_dir())
    for tree in trees:
        cc = tree / "compile_commands.json"
        if cc.is_file():
            return cc
    return None


def collect_files(root, compile_commands, tool="lint"):
    """src/ headers plus every src/ TU the build compiles (falls back to a
    directory walk when no database is available)."""
    src = root / "src"
    files = set(src.rglob("*.hpp")) | set(src.rglob("*.h"))
    used_db = False
    if compile_commands and compile_commands.is_file():
        try:
            db = json.loads(compile_commands.read_text())
            for entry in db:
                f = Path(entry["file"])
                if not f.is_absolute():
                    f = Path(entry.get("directory", ".")) / f
                f = f.resolve()
                if src.resolve() in f.parents and f.is_file():
                    files.add(f)
                    used_db = True
        except (json.JSONDecodeError, KeyError, OSError) as e:
            print(f"{tool}: warning: bad compilation database: {e}",
                  file=sys.stderr)
    if not used_db:
        files |= set(src.rglob("*.cpp"))
    return sorted(files)


def strip_comments(lines):
    """Blanks //- and /* */-comments; suppressions are read from raw lines."""
    out = []
    in_block = False
    for line in lines:
        res = []
        i = 0
        while i < len(line):
            if in_block:
                end = line.find("*/", i)
                if end < 0:
                    i = len(line)
                else:
                    in_block = False
                    i = end + 2
            elif line.startswith("//", i):
                break
            elif line.startswith("/*", i):
                in_block = True
                i += 2
            else:
                res.append(line[i])
                i += 1
        out.append("".join(res))
    return out


class SourceFile:
    """A parsed source file: raw lines, comment-stripped lines and text."""

    def __init__(self, path, rel):
        self.path = path
        self.rel = rel
        self.raw = path.read_text().splitlines()
        self.code = strip_comments(self.raw)
        self.text = "\n".join(self.code)
        # Offsets of line starts in `text`, for offset -> line mapping.
        self.line_starts = [0]
        for line in self.code:
            self.line_starts.append(self.line_starts[-1] + len(line) + 1)

    def line_of(self, offset):
        lo, hi = 0, len(self.line_starts) - 1
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if self.line_starts[mid] <= offset:
                lo = mid
            else:
                hi = mid - 1
        return lo + 1  # 1-based

    def suppressed(self, lineno, rule, tool="gmmcs-lint"):
        """True if 1-based `lineno` (or the line above) allows `rule`."""
        pat = _SUPPRESS_RES[tool]
        for look in (lineno - 1, lineno - 2):
            if look < 0 or look >= len(self.raw):
                continue
            m = pat.search(self.raw[look])
            if m and (m.group(0) == "NOLINT"
                      or m.group(1) in (rule, "all")):
                return True
        return False


def _parse_source(item):
    path, rel = item
    return SourceFile(Path(path), rel)


def load_sources(root, files, jobs=1):
    """Parses `files` into SourceFile objects, keyed relative to `root`.
    With jobs > 1 the parse fans out over a process pool; results come
    back in input order either way so pass output stays deterministic."""
    items = [(str(f), f.resolve().relative_to(root).as_posix())
             for f in files]
    if jobs > 1 and len(items) > 1:
        try:
            from multiprocessing import Pool
            with Pool(min(jobs, len(items))) as pool:
                return pool.map(_parse_source, items)
        except (ImportError, OSError):
            pass  # no fork / restricted env: fall through to serial
    return [_parse_source(it) for it in items]


def add_frontend_args(ap):
    """Installs the shared CLI surface (--compile-commands, --root, --jobs)
    on an argparse parser."""
    ap.add_argument("--compile-commands", type=Path, default=None,
                    help="compile_commands.json from the build tree "
                         "(default: auto-discover under build*/)")
    ap.add_argument("--root", type=Path, default=Path.cwd(),
                    help="repository root (default: cwd)")
    ap.add_argument("--jobs", type=int, default=1, metavar="N",
                    help="parse translation units on N processes")
